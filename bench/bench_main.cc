// Unified benchmark driver: links every bench_* translation unit behind one
// CLI and emits machine-readable results.
//
//   chaos_bench --list
//   chaos_bench --bench=fig8 --trials=3 --out=results.json
//   chaos_bench --bench=micro,fig8,fig_memory --out=baseline.json
//   chaos_bench --bench=all --out=results.json --jobs=8
//   chaos_bench --bench=fig8 --scale=14          (extra flags forwarded)
//
// Driver-level flags (--bench, --trials, --out, --jobs, --list, --help) are
// consumed here; everything else is forwarded verbatim to the selected
// bench, which parses it with the usual Options flag set. With a comma
// list, forwarded flags go to EVERY listed bench — a flag only one of
// them registers fails the others, so forward flags only to single-bench
// invocations. --jobs N runs
// each bench's sweep points on N host threads (default: hardware
// concurrency; --jobs 1 is fully sequential) — simulation results are
// bitwise independent of the setting, only wall_ms changes. The JSON
// schema is documented in README.md ("Benchmark JSON schema"); per-trial
// "metrics" carry simulation-derived values only and are byte-identical
// across --jobs settings.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace chaos::bench {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct TrialResult {
  int trial = 0;
  int exit_code = 0;
  double wall_ms = 0.0;
  // Simulation-derived metrics recorded by the bench (RecordMetric),
  // already key-sorted; deterministic across --jobs settings.
  std::map<std::string, double> metrics;
};

struct BenchResult {
  std::string name;
  std::string description;
  std::vector<TrialResult> trials;
};

const BenchEntry* FindBench(const std::string& name) {
  for (const auto& entry : BenchRegistry()) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

std::vector<const BenchEntry*> SortedRegistry() {
  std::vector<const BenchEntry*> entries;
  for (const auto& entry : BenchRegistry()) {
    entries.push_back(&entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const BenchEntry* a, const BenchEntry* b) { return a->name < b->name; });
  return entries;
}

int RunOne(const BenchEntry& entry, int trials, const std::vector<std::string>& forwarded,
           std::vector<BenchResult>* results) {
  // Rebuild an argv for the bench: argv[0] is the bench name, the rest are
  // the forwarded flags. Each trial gets a fresh copy because benches may
  // permute argv while parsing.
  int worst = 0;
  BenchResult result;
  result.name = entry.name;
  result.description = entry.description;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<std::string> args;
    args.push_back(entry.name);
    args.insert(args.end(), forwarded.begin(), forwarded.end());
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (auto& a : args) {
      argv.push_back(a.data());
    }
    TakeRecordedMetrics();  // drop leftovers from a failed earlier trial
    const auto start = std::chrono::steady_clock::now();
    const int rc = entry.fn(static_cast<int>(argv.size()), argv.data());
    const auto end = std::chrono::steady_clock::now();
    TrialResult t;
    t.trial = trial;
    t.exit_code = rc;
    t.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
    t.metrics = TakeRecordedMetrics();
    result.trials.push_back(t);
    worst = std::max(worst, rc);
    std::fflush(stdout);
  }
  results->push_back(std::move(result));
  return worst;
}

std::string ToJson(const std::vector<BenchResult>& results, int trials, int jobs,
                   const std::vector<std::string>& forwarded) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\n";
  out << "  \"schema\": \"chaos-bench-v1\",\n";
  out << "  \"driver\": \"chaos_bench\",\n";
  out << "  \"trials\": " << trials << ",\n";
  out << "  \"jobs\": " << jobs << ",\n";
  out << "  \"forwarded_args\": [";
  for (size_t i = 0; i < forwarded.size(); ++i) {
    out << (i ? ", " : "") << '"' << JsonEscape(forwarded[i]) << '"';
  }
  out << "],\n";
  out << "  \"benches\": [\n";
  for (size_t b = 0; b < results.size(); ++b) {
    const BenchResult& r = results[b];
    double sum = 0.0, mn = 0.0, mx = 0.0;
    bool ok = true;
    for (size_t i = 0; i < r.trials.size(); ++i) {
      const double ms = r.trials[i].wall_ms;
      sum += ms;
      mn = i == 0 ? ms : std::min(mn, ms);
      mx = std::max(mx, ms);
      ok = ok && r.trials[i].exit_code == 0;
    }
    const double mean = r.trials.empty() ? 0.0 : sum / static_cast<double>(r.trials.size());
    out << "    {\n";
    out << "      \"bench\": \"" << JsonEscape(r.name) << "\",\n";
    out << "      \"description\": \"" << JsonEscape(r.description) << "\",\n";
    out << "      \"ok\": " << (ok ? "true" : "false") << ",\n";
    out << "      \"wall_ms_mean\": " << mean << ",\n";
    out << "      \"wall_ms_min\": " << mn << ",\n";
    out << "      \"wall_ms_max\": " << mx << ",\n";
    out << "      \"trials\": [\n";
    for (size_t i = 0; i < r.trials.size(); ++i) {
      const TrialResult& t = r.trials[i];
      out << "        {\"trial\": " << t.trial << ", \"exit_code\": " << t.exit_code
          << ", \"wall_ms\": " << t.wall_ms << ",\n";
      out << "         \"metrics\": {";
      size_t k = 0;
      for (const auto& [key, value] : t.metrics) {
        out << (k++ ? ", " : "") << '"' << JsonEscape(key) << "\": " << value;
      }
      out << "}}" << (i + 1 < r.trials.size() ? "," : "") << "\n";
    }
    out << "      ]\n";
    out << "    }" << (b + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

void PrintUsage(std::FILE* stream, const char* prog) {
  std::fprintf(stream,
               "usage: %s --bench=<name[,name...]|all> [--trials=N] [--jobs=N] [--out=FILE] "
               "[bench flags...]\n"
               "       %s --list\n"
               "--jobs runs sweep points on N threads (0/default: all cores; results\n"
               "are bitwise independent of the setting)\n",
               prog, prog);
}

int DriverMain(int argc, char** argv) {
  std::string bench;
  std::string trials_text = "1";
  std::string jobs_text = "0";  // 0 = hardware concurrency
  std::string out_path;
  bool list = false;
  std::vector<std::string> forwarded;

  // Accepts both `--name=value` and `--name value`, mirroring the benches'
  // own Options parser.
  auto value_of = [&](int* i, const char* name) -> const char* {
    const char* arg = argv[*i];
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) {
      return nullptr;
    }
    if (arg[len] == '=') {
      return arg + len + 1;
    }
    if (arg[len] == '\0' && *i + 1 < argc) {
      return argv[++*i];
    }
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = value_of(&i, "--bench")) {
      bench = v;
    } else if (const char* v2 = value_of(&i, "--trials")) {
      trials_text = v2;
    } else if (const char* v3 = value_of(&i, "--out")) {
      out_path = v3;
    } else if (const char* v4 = value_of(&i, "--jobs")) {
      jobs_text = v4;
    } else if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--help") == 0 && bench.empty()) {
      PrintUsage(stdout, argv[0]);
      return 0;
    } else {
      forwarded.push_back(arg);
    }
  }

  if (list) {
    for (const BenchEntry* entry : SortedRegistry()) {
      std::printf("%-10s %s\n", entry->name.c_str(), entry->description.c_str());
    }
    return 0;
  }
  if (bench.empty()) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }
  char* trials_end = nullptr;
  const long trials = std::strtol(trials_text.c_str(), &trials_end, 10);
  if (trials_end == trials_text.c_str() || *trials_end != '\0' || trials < 1) {
    std::fprintf(stderr, "error: --trials must be a positive integer, got '%s'\n",
                 trials_text.c_str());
    return 2;
  }
  char* jobs_end = nullptr;
  const long jobs_flag = std::strtol(jobs_text.c_str(), &jobs_end, 10);
  if (jobs_end == jobs_text.c_str() || *jobs_end != '\0' || jobs_flag < 0) {
    std::fprintf(stderr, "error: --jobs must be a non-negative integer, got '%s'\n",
                 jobs_text.c_str());
    return 2;
  }
  // 0 = all cores; the executor owns the normalization rule — read the
  // resolved count back for the JSON record.
  SetSweepJobs(static_cast<int>(jobs_flag));
  const int jobs = SharedSweepExecutor().jobs();

  // --bench accepts a single name, a comma-separated list run in the given
  // order, or "all" (the sorted registry).
  std::vector<const BenchEntry*> to_run;
  if (bench == "all") {
    to_run = SortedRegistry();
  } else {
    size_t pos = 0;
    while (pos <= bench.size()) {
      size_t comma = bench.find(',', pos);
      if (comma == std::string::npos) {
        comma = bench.size();
      }
      const std::string name = bench.substr(pos, comma - pos);
      pos = comma + 1;
      if (name.empty()) {
        continue;
      }
      const BenchEntry* entry = FindBench(name);
      if (entry == nullptr) {
        std::fprintf(stderr, "error: unknown bench '%s'; try --list\n", name.c_str());
        return 2;
      }
      to_run.push_back(entry);
    }
    if (to_run.empty()) {
      std::fprintf(stderr, "error: --bench lists no benches\n");
      return 2;
    }
  }

  std::vector<BenchResult> results;
  int worst = 0;
  for (const BenchEntry* entry : to_run) {
    std::printf("=== bench: %s ===\n", entry->name.c_str());
    worst = std::max(worst, RunOne(*entry, static_cast<int>(trials), forwarded, &results));
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    out << ToJson(results, static_cast<int>(trials), jobs, forwarded);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return worst;
}

}  // namespace
}  // namespace chaos::bench

int main(int argc, char** argv) { return chaos::bench::DriverMain(argc, argv); }
