#include "core/partition.h"

namespace chaos {

Partitioning::Partitioning(uint64_t num_vertices, int machines, uint32_t num_partitions)
    : num_vertices_(num_vertices), machines_(machines), num_partitions_(num_partitions) {
  CHAOS_CHECK_GT(num_vertices, 0u);
  CHAOS_CHECK_GT(machines, 0);
  CHAOS_CHECK_GT(num_partitions, 0u);
  CHAOS_CHECK_EQ(num_partitions % static_cast<uint32_t>(machines), 0u);
  verts_per_partition_ = (num_vertices + num_partitions - 1) / num_partitions;
  CHAOS_CHECK_GT(verts_per_partition_, 0u);
}

Partitioning Partitioning::Compute(uint64_t num_vertices, int machines,
                                   uint64_t bytes_per_vertex, uint64_t memory_budget_bytes) {
  CHAOS_CHECK_GT(bytes_per_vertex, 0u);
  CHAOS_CHECK_GE(memory_budget_bytes, bytes_per_vertex);
  const auto m = static_cast<uint32_t>(machines);
  // Smallest multiple of `machines` such that each partition's vertex state
  // fits in the budget (§3).
  for (uint32_t k = 1;; ++k) {
    const uint32_t parts = k * m;
    const uint64_t verts = (num_vertices + parts - 1) / parts;
    if (verts * bytes_per_vertex <= memory_budget_bytes) {
      return Partitioning(num_vertices, machines, parts);
    }
    CHAOS_CHECK_MSG(static_cast<uint64_t>(parts) <= num_vertices,
                    "memory budget too small: one vertex does not fit");
  }
}

Partitioning Partitioning::WithPartitions(uint64_t num_vertices, int machines,
                                          uint32_t num_partitions) {
  return Partitioning(num_vertices, machines, num_partitions);
}

}  // namespace chaos
