#include "core/chunk_io.h"

#include <algorithm>
#include <utility>

#include "core/update_chunk_view.h"

namespace chaos {
namespace {

Message StorageRequest(MachineId src, MachineId dst, uint32_t type, uint64_t wire_bytes,
                       std::any body) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.service = kStorageService;
  m.type = type;
  m.wire_bytes = wire_bytes;
  m.body = std::move(body);
  return m;
}

}  // namespace

ChunkFetcher::ChunkFetcher(EngineContext* ctx, Rng* rng, SetId set, uint64_t epoch, int window,
                           MachineId local_master_target, bool preserve_payload)
    : ctx_(ctx),
      rng_(rng),
      set_(set),
      epoch_(epoch),
      window_(window),
      preserve_payload_(preserve_payload),
      forced_target_(local_master_target),
      cond_(ctx->sim),
      credits_(window),
      engine_empty_(static_cast<size_t>(ctx->machines()), 0),
      in_flight_per_engine_(static_cast<size_t>(ctx->machines()), 0),
      engines_left_(ctx->machines()) {
  CHAOS_CHECK_GT(window_, 0);
  if (ctx_->config->placement == Placement::kLocalMaster) {
    CHAOS_CHECK(forced_target_ != kNoMachine);
    // Only the master's engine holds the set: others are empty by design.
    for (MachineId m = 0; m < ctx_->machines(); ++m) {
      if (m != forced_target_) {
        engine_empty_[static_cast<size_t>(m)] = 1;
        --engines_left_;
      }
    }
  }
}

void ChunkFetcher::Start() {
  CHAOS_CHECK(!started_);
  started_ = true;
  const bool directory = ctx_->config->placement == Placement::kCentralDirectory &&
                         set_.kind != SetKind::kVertices;
  for (int i = 0; i < window_; ++i) {
    ++workers_active_;
    ctx_->sim->Spawn(directory ? DirectoryWorker() : Worker());
  }
}

MachineId ChunkFetcher::PickTarget() {
  // Among engines not known-empty, pick uniformly among those with the
  // fewest in-flight requests from this fetcher.
  int best = INT32_MAX;
  int candidates = 0;
  for (MachineId m = 0; m < ctx_->machines(); ++m) {
    if (engine_empty_[static_cast<size_t>(m)]) {
      continue;
    }
    const int load = in_flight_per_engine_[static_cast<size_t>(m)];
    if (load < best) {
      best = load;
      candidates = 1;
    } else if (load == best) {
      ++candidates;
    }
  }
  if (candidates == 0) {
    return kNoMachine;
  }
  uint64_t pick = rng_->Below(static_cast<uint64_t>(candidates));
  for (MachineId m = 0; m < ctx_->machines(); ++m) {
    if (engine_empty_[static_cast<size_t>(m)] ||
        in_flight_per_engine_[static_cast<size_t>(m)] != best) {
      continue;
    }
    if (pick == 0) {
      return m;
    }
    --pick;
  }
  CHAOS_CHECK_MSG(false, "unreachable: candidate disappeared");
  return kNoMachine;
}

Task<> ChunkFetcher::Worker() {
  while (true) {
    // Backpressure: in-flight requests plus buffered-but-unconsumed chunks
    // never exceed the window. Without this the pipeline would drain whole
    // sets from storage far ahead of a slow consumer — an unbounded prefetch
    // buffer the real engine does not have (§6.5 keeps floor(phi*k) chunk
    // *requests* outstanding) — and the master's storage-side D estimate
    // (§5.4) would undercount remaining work whenever a scan is CPU-bound,
    // e.g. on a degraded straggler machine.
    while (credits_ == 0 && engines_left_ > 0 && !cancelled_) {
      co_await cond_.Wait();
    }
    if (cancelled_) {
      break;
    }
    const MachineId target = PickTarget();
    if (target == kNoMachine) {
      break;
    }
    --credits_;
    in_flight_per_engine_[static_cast<size_t>(target)]++;
    // Named locals around coroutine-call arguments (g++ 12 wrong-code with
    // braced aggregate temporaries in co_await expressions; see sim/task.h).
    ReadChunkReq body{set_, epoch_, preserve_payload_};
    Message req = StorageRequest(ctx_->machine, target, kReadChunkReq, kControlMsgBytes,
                                 std::move(body));
    Message resp = co_await ctx_->bus->Call(std::move(req));
    in_flight_per_engine_[static_cast<size_t>(target)]--;
    auto& r = std::any_cast<ReadChunkResp&>(resp.body);
    if (r.ok) {
      ++chunks_fetched_;
      bytes_fetched_ += r.chunk.model_bytes;
      // The buffered chunk occupies this machine's memory until the
      // consumer takes it; under budget pressure the admission spills
      // colder buffers (a simulated device write) before completing.
      Buffered b;
      b.chunk = std::move(r.chunk);
      if (ctx_->pool != nullptr) {
        b.lease = co_await ctx_->pool->Acquire(b.chunk.model_bytes);
      }
      ready_.push_back(std::move(b));
    } else {
      ++credits_;  // nothing buffered: return the credit
      if (!engine_empty_[static_cast<size_t>(target)]) {
        engine_empty_[static_cast<size_t>(target)] = 1;
        --engines_left_;
      }
    }
    cond_.NotifyAll();
  }
  if (--workers_active_ == 0) {
    cond_.NotifyAll();
  }
}

Task<> ChunkFetcher::DirectoryWorker() {
  DirectoryServer* dir = ctx_->directory;
  CHAOS_CHECK(dir != nullptr);
  while (!directory_exhausted_ && !cancelled_) {
    while (credits_ == 0 && !directory_exhausted_ && !cancelled_) {
      co_await cond_.Wait();
    }
    if (directory_exhausted_ || cancelled_) {
      break;
    }
    --credits_;
    Message req;
    req.src = ctx_->machine;
    req.dst = dir->home();
    req.service = kDirectoryService;
    req.type = kDirNextReq;
    req.wire_bytes = kControlMsgBytes;
    req.body = DirNextReq{set_, epoch_};
    Message dresp = co_await ctx_->bus->Call(std::move(req));
    const auto& next = std::any_cast<const DirNextResp&>(dresp.body);
    if (!next.ok) {
      directory_exhausted_ = true;
      ++credits_;
      cond_.NotifyAll();
      break;
    }
    // Snapshot scans must not free the update payloads the real gather
    // still has to drain (mirrors the preserve flag on sequential reads).
    ReadIndexedReq body{set_, next.index, /*consume=*/!preserve_payload_, epoch_};
    Message read = StorageRequest(ctx_->machine, next.engine, kReadIndexedReq,
                                  kControlMsgBytes, std::move(body));
    Message resp = co_await ctx_->bus->Call(std::move(read));
    auto& r = std::any_cast<ReadChunkResp&>(resp.body);
    CHAOS_CHECK_MSG(r.ok, "directory pointed at a missing chunk in " + SetIdName(set_));
    ++chunks_fetched_;
    bytes_fetched_ += r.chunk.model_bytes;
    Buffered b;
    b.chunk = std::move(r.chunk);
    if (ctx_->pool != nullptr) {
      b.lease = co_await ctx_->pool->Acquire(b.chunk.model_bytes);
    }
    ready_.push_back(std::move(b));
    cond_.NotifyAll();
  }
  if (--workers_active_ == 0) {
    cond_.NotifyAll();
  }
}

Task<> ChunkFetcher::Cancel() {
  CHAOS_CHECK(started_);
  cancelled_ = true;
  cond_.NotifyAll();
  while (workers_active_ > 0) {
    co_await cond_.Wait();
  }
  ready_.clear();
}

Task<std::optional<Chunk>> ChunkFetcher::Next() {
  CHAOS_CHECK(started_);
  while (true) {
    if (!ready_.empty()) {
      Buffered b = std::move(ready_.front());
      ready_.pop_front();
      ++credits_;  // consumed: let a worker issue the next request
      cond_.NotifyAll();
      // The lease is dropped on handoff: the consumer scans the chunk and
      // frees it within one loop iteration (sub-chunk transients are part
      // of the pool's streaming headroom).
      co_return std::move(b.chunk);
    }
    if (workers_active_ == 0) {
      co_return std::nullopt;
    }
    co_await cond_.Wait();
  }
}

ChunkWriter::ChunkWriter(EngineContext* ctx, Rng* rng, int window)
    : ctx_(ctx), rng_(rng), window_(ctx->sim, window), group_(ctx->sim) {}

uint64_t ChunkWriter::CombinedUpdateWire(const Chunk& chunk) const {
  // Per-record wire width is a chunk invariant (model_bytes = count *
  // UpdateWireBytes); the value column is what rides beyond the id.
  const uint64_t record_wire = chunk.model_bytes / chunk.count;
  CHAOS_DCHECK(record_wire * chunk.count == chunk.model_bytes);
  CHAOS_DCHECK(record_wire > vid_wire_);
  const uint64_t value_bytes = record_wire - vid_wire_;
  const UpdateChunkView view(chunk, value_bytes);
  UpdateWireSizer sizer;
  for (uint32_t i = 0; i < chunk.count; ++i) {
    sizer.Add(view.DstAt(i));
  }
  return sizer.PackedWireBytes(record_wire, value_bytes);
}

Task<> ChunkWriter::WriteToEngine(SetId set, Chunk chunk, MachineId target) {
  const uint64_t bytes = chunk.model_bytes;
  // The in-flight payload occupies this machine's memory until the write
  // is acknowledged.
  BufferPool::Lease lease;
  if (ctx_->pool != nullptr) {
    lease = co_await ctx_->pool->Acquire(bytes);
  }
  // With wire combining on, outbound update batches are re-encoded columnar
  // for the transfer only (net/network.h, UpdateWireCodec): the NIC charge
  // shrinks, the stored chunk and its model_bytes do not.
  uint64_t wire = bytes;
  if (combine_updates_ && chunk.count > 0 &&
      (set.kind == SetKind::kUpdatesEven || set.kind == SetKind::kUpdatesOdd)) {
    wire = CombinedUpdateWire(chunk);
    if (metrics_ != nullptr) {
      metrics_->update_wire_bytes_saved += bytes - wire;
      if (wire < bytes) {
        ++metrics_->update_chunks_packed;
      }
    }
  }
  WriteChunkReq body{set, std::move(chunk)};
  Message req = StorageRequest(ctx_->machine, target, kWriteChunkReq, wire + kControlMsgBytes,
                               std::move(body));
  Message ack = co_await ctx_->bus->Call(std::move(req));
  CHAOS_CHECK_EQ(ack.type, static_cast<uint32_t>(kWriteAck));
  ++chunks_written_;
  bytes_written_ += bytes;
  window_.Release();
}

Task<> ChunkWriter::Write(SetId set, Chunk chunk, MachineId home_or_master) {
  co_await window_.Acquire();
  MachineId target = kNoMachine;
  if (IsIndexedKind(set.kind)) {
    // Vertex/checkpoint chunks live at deterministic hashed homes (§6.4).
    target = home_or_master;
    group_.Spawn(WriteToEngine(set, std::move(chunk), target));
    co_return;
  }
  switch (ctx_->config->placement) {
    case Placement::kRandom:
      target = static_cast<MachineId>(rng_->Below(static_cast<uint64_t>(ctx_->machines())));
      break;
    case Placement::kLocalMaster:
      target = home_or_master;
      break;
    case Placement::kCentralDirectory: {
      Message req;
      req.src = ctx_->machine;
      req.dst = ctx_->directory->home();
      req.service = kDirectoryService;
      req.type = kDirAllocReq;
      req.wire_bytes = kControlMsgBytes;
      req.body = DirAllocReq{set};
      Message resp = co_await ctx_->bus->Call(std::move(req));
      const auto& alloc = std::any_cast<const DirAllocResp&>(resp.body);
      target = alloc.engine;
      chunk.index = alloc.index;  // directory-assigned, unique within the set
      break;
    }
  }
  CHAOS_CHECK(target != kNoMachine);
  group_.Spawn(WriteToEngine(set, std::move(chunk), target));
}

Task<> ChunkWriter::Drain() { co_await group_.Join(); }

Task<> DeleteSetEverywhere(EngineContext* ctx, SetId set) {
  if (ctx->directory != nullptr) {
    // Invalidate the central directory's chunk locations first so no reader
    // is pointed at a deleted chunk.
    DirForgetReq body{set};
    Message req;
    req.src = ctx->machine;
    req.dst = ctx->directory->home();
    req.service = kDirectoryService;
    req.type = kDirForgetReq;
    req.wire_bytes = kControlMsgBytes;
    req.body = std::move(body);
    Message ack = co_await ctx->bus->Call(std::move(req));
    CHAOS_CHECK_EQ(ack.type, static_cast<uint32_t>(kDirForgetResp));
  }
  TaskGroup group(ctx->sim);
  for (MachineId m = 0; m < ctx->machines(); ++m) {
    group.Spawn([](EngineContext* ctx, SetId set, MachineId m) -> Task<> {
      DeleteSetReq body{set};
      Message req =
          StorageRequest(ctx->machine, m, kDeleteSetReq, kControlMsgBytes, std::move(body));
      Message ack = co_await ctx->bus->Call(std::move(req));
      CHAOS_CHECK_EQ(ack.type, static_cast<uint32_t>(kDeleteAck));
    }(ctx, set, m));
  }
  co_await group.Join();
}

}  // namespace chaos
