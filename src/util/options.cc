#include "util/options.h"

#include <cstdio>
#include <cstdlib>

#include "util/common.h"

namespace chaos {

void Options::AddInt(const std::string& name, int64_t default_value, const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  CHAOS_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag " + name);
  order_.push_back(name);
}

void Options::AddDouble(const std::string& name, double default_value, const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  CHAOS_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag " + name);
  order_.push_back(name);
}

void Options::AddBool(const std::string& name, bool default_value, const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  CHAOS_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag " + name);
  order_.push_back(name);
}

void Options::AddString(const std::string& name, const std::string& default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  CHAOS_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag " + name);
  order_.push_back(name);
}

std::optional<std::string> Options::SetFromString(const std::string& name,
                                                  const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return "unknown flag --" + name;
  }
  Flag& f = it->second;
  char* end = nullptr;
  switch (f.type) {
    case Type::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 0);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return "flag --" + name + " expects an integer, got '" + value + "'";
      }
      f.int_value = v;
      break;
    }
    case Type::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return "flag --" + name + " expects a number, got '" + value + "'";
      }
      f.double_value = v;
      break;
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value == "yes") {
        f.bool_value = true;
      } else if (value == "false" || value == "0" || value == "no") {
        f.bool_value = false;
      } else {
        return "flag --" + name + " expects a boolean, got '" + value + "'";
      }
      break;
    }
    case Type::kString:
      f.string_value = value;
      break;
  }
  return std::nullopt;
}

std::optional<std::string> Options::Parse(int argc, char** argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      return "unexpected positional argument '" + arg + "'";
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      auto err = SetFromString(arg.substr(0, eq), arg.substr(eq + 1));
      if (err) {
        return err;
      }
      continue;
    }
    // --no-name for booleans.
    if (arg.rfind("no-", 0) == 0) {
      const std::string name = arg.substr(3);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        it->second.bool_value = false;
        continue;
      }
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return "unknown flag --" + arg;
    }
    if (it->second.type == Type::kBool) {
      it->second.bool_value = true;
      continue;
    }
    if (i + 1 >= argc) {
      return "flag --" + arg + " expects a value";
    }
    auto err = SetFromString(arg, argv[++i]);
    if (err) {
      return err;
    }
  }
  return std::nullopt;
}

const Options::Flag& Options::Find(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  CHAOS_CHECK_MSG(it != flags_.end(), "flag not registered: " + name);
  CHAOS_CHECK_MSG(it->second.type == type, "flag type mismatch: " + name);
  return it->second;
}

int64_t Options::GetInt(const std::string& name) const { return Find(name, Type::kInt).int_value; }

double Options::GetDouble(const std::string& name) const {
  return Find(name, Type::kDouble).double_value;
}

bool Options::GetBool(const std::string& name) const { return Find(name, Type::kBool).bool_value; }

const std::string& Options::GetString(const std::string& name) const {
  return Find(name, Type::kString).string_value;
}

void Options::PrintHelp(const char* program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program);
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    std::string def;
    switch (f.type) {
      case Type::kInt:
        def = std::to_string(f.int_value);
        break;
      case Type::kDouble:
        def = std::to_string(f.double_value);
        break;
      case Type::kBool:
        def = f.bool_value ? "true" : "false";
        break;
      case Type::kString:
        def = f.string_value;
        break;
    }
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                 def.c_str());
  }
}

}  // namespace chaos
