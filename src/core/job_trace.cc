#include "core/job_trace.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace chaos {

const char* TracePresetName(TracePreset preset) {
  switch (preset) {
    case TracePreset::kUniform:
      return "uniform";
    case TracePreset::kBursty:
      return "bursty";
    case TracePreset::kDiurnal:
      return "diurnal";
  }
  return "?";
}

std::optional<TracePreset> TracePresetByName(const std::string& name) {
  if (name == "uniform") {
    return TracePreset::kUniform;
  }
  if (name == "bursty") {
    return TracePreset::kBursty;
  }
  if (name == "diurnal") {
    return TracePreset::kDiurnal;
  }
  return std::nullopt;
}

namespace {

TimeNs UniformArrival(Rng& rng, TimeNs horizon) {
  return static_cast<TimeNs>(rng.Below(static_cast<uint64_t>(horizon)));
}

// Bursty: jobs cluster around a handful of burst centers (batch submission,
// retrained-pipeline kicks), each with a small jitter.
TimeNs BurstyArrival(Rng& rng, TimeNs horizon, const std::vector<TimeNs>& centers) {
  const TimeNs center = centers[rng.Below(centers.size())];
  const TimeNs jitter_span = horizon / 32;
  const TimeNs jitter = static_cast<TimeNs>(rng.Below(static_cast<uint64_t>(jitter_span))) -
                        jitter_span / 2;
  return std::clamp<TimeNs>(center + jitter, 0, horizon - 1);
}

// Diurnal: sinusoidal rate over one "day" (the horizon), peak at mid-day.
// Sampled by rejection against lambda(t) = (1 + 0.8 sin(2 pi t / H)) / 1.8,
// which stays deterministic because every draw comes from the seeded stream.
TimeNs DiurnalArrival(Rng& rng, TimeNs horizon) {
  for (;;) {
    const TimeNs t = static_cast<TimeNs>(rng.Below(static_cast<uint64_t>(horizon)));
    const double phase =
        2.0 * 3.14159265358979323846 * static_cast<double>(t) / static_cast<double>(horizon);
    const double accept = (1.0 + 0.8 * std::sin(phase)) / 1.8;
    if (rng.NextDouble() < accept) {
      return t;
    }
  }
}

}  // namespace

std::vector<TraceEntry> GenerateTrace(const TraceOptions& options) {
  CHAOS_CHECK_MSG(options.num_jobs >= 1, "trace needs at least one job");
  CHAOS_CHECK_MSG(options.horizon >= 1, "trace horizon must be positive");
  Rng rng(options.seed);

  std::vector<TimeNs> centers;
  if (options.preset == TracePreset::kBursty) {
    const int num_centers = std::max(1, options.num_jobs / 4);
    centers.reserve(static_cast<size_t>(num_centers));
    for (int i = 0; i < num_centers; ++i) {
      centers.push_back(UniformArrival(rng, options.horizon));
    }
  }

  std::vector<TraceEntry> entries(static_cast<size_t>(options.num_jobs));
  for (TraceEntry& entry : entries) {
    switch (options.preset) {
      case TracePreset::kUniform:
        entry.arrival = UniformArrival(rng, options.horizon);
        break;
      case TracePreset::kBursty:
        entry.arrival = BurstyArrival(rng, options.horizon, centers);
        break;
      case TracePreset::kDiurnal:
        entry.arrival = DiurnalArrival(rng, options.horizon);
        break;
    }
    entry.priority = rng.Bernoulli(options.high_fraction) ? options.high_priority
                                                          : options.low_priority;
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const TraceEntry& a, const TraceEntry& b) { return a.arrival < b.arrival; });
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].seed = DeriveSeed(options.seed, i);
  }
  return entries;
}

}  // namespace chaos
