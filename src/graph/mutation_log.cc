#include "graph/mutation_log.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <tuple>
#include <unordered_set>

#include "util/common.h"
#include "util/rng.h"

namespace chaos {
namespace {

// Exact-record key for delete matching: weight compared by bit pattern so
// the multiset semantics are total (no NaN/-0.0 surprises). Must be a
// lossless encoding, not a hash — a collision would make Apply remove an
// edge the batch never named, and the incremental seeders' reseed math
// relies on the graph diff being exactly the batch's records.
using EdgeKey = std::tuple<VertexId, VertexId, uint32_t, uint8_t>;

EdgeKey ExactKey(const Edge& e) {
  uint32_t wbits = 0;
  static_assert(sizeof(wbits) == sizeof(e.weight));
  std::memcpy(&wbits, &e.weight, sizeof(wbits));
  return EdgeKey{e.src, e.dst, wbits, e.flags};
}

Edge RandomInsert(Rng& rng, const InputGraph& g, VertexId hot_base, VertexId hot_span,
                  bool hotspot) {
  Edge e;
  const VertexId n = g.num_vertices;
  auto pick = [&](bool hot) -> VertexId {
    if (hot && hot_span > 0) {
      return hot_base + rng.Below(hot_span);
    }
    return rng.Below(n);
  };
  // Hotspot inserts anchor one endpoint in the hot set 7 times out of 8.
  const bool hot = hotspot && rng.Below(8) != 0;
  e.src = pick(hot && rng.Below(2) == 0);
  e.dst = pick(hot);
  if (e.src == e.dst) {
    e.dst = (e.dst + 1) % n;
  }
  e.weight = g.weighted ? static_cast<float>(1 + rng.Below(9)) : 1.0f;
  e.flags = kEdgeForward;
  return e;
}

}  // namespace

const char* MutatePresetName(MutatePreset preset) {
  switch (preset) {
    case MutatePreset::kUniform:
      return "uniform";
    case MutatePreset::kHotspot:
      return "hotspot";
    case MutatePreset::kChurn:
      return "churn";
  }
  return "?";
}

std::optional<MutatePreset> MutatePresetByName(const std::string& name) {
  if (name == "uniform") {
    return MutatePreset::kUniform;
  }
  if (name == "hotspot") {
    return MutatePreset::kHotspot;
  }
  if (name == "churn") {
    return MutatePreset::kChurn;
  }
  return std::nullopt;
}

MutationLog::MutationLog(const InputGraph& base, const MutationLogOptions& opt)
    : base_(base) {
  CHAOS_CHECK_GT(base.num_vertices, 1u);
  CHAOS_CHECK(opt.rate > 0.0);
  CHAOS_CHECK(opt.delete_fraction >= 0.0 && opt.delete_fraction <= 1.0);

  InputGraph current = base;
  // Hot set: a contiguous 1/16 slice of the id space, placed by the seed.
  const VertexId hot_span = std::max<VertexId>(current.num_vertices / 16, 1);
  const VertexId hot_base =
      Mix64(opt.seed, 0x407u) % (current.num_vertices - hot_span + 1);
  const bool hotspot = opt.preset == MutatePreset::kHotspot;

  std::vector<Edge> prev_inserts;  // churn: last batch's inserts
  batches_.reserve(opt.num_batches);
  for (uint32_t k = 0; k < opt.num_batches; ++k) {
    Rng rng(Mix64(opt.seed, 0x6d75u + k));  // per-batch stream
    MutationBatch b;
    const uint64_t edges_now = current.edges.size();
    const uint64_t total = std::max<uint64_t>(
        static_cast<uint64_t>(opt.rate * static_cast<double>(edges_now) + 0.5), 1);
    uint64_t num_del = static_cast<uint64_t>(
        opt.delete_fraction * static_cast<double>(total) + 0.5);
    num_del = std::min(num_del, edges_now);

    // ---- Deletes: distinct indices into the current edge list.
    std::unordered_set<uint64_t> taken;
    auto take_index = [&](uint64_t idx) -> bool {
      if (!taken.insert(idx).second) {
        return false;
      }
      b.deletes.push_back(current.edges[idx]);
      return true;
    };
    if (opt.preset == MutatePreset::kChurn && !prev_inserts.empty()) {
      // Short-lived edges: retire the previous batch's inserts first. They
      // live at the tail of the current edge list (Apply appends inserts).
      const uint64_t tail = edges_now - prev_inserts.size();
      for (uint64_t i = 0; i < prev_inserts.size() && b.deletes.size() < num_del; ++i) {
        take_index(tail + i);
      }
    }
    uint64_t attempts = 0;
    while (b.deletes.size() < num_del && attempts < 64 * num_del + 64) {
      ++attempts;
      const uint64_t idx = rng.Below(edges_now);
      if (hotspot) {
        // Bias deletes toward hot-set edges: non-hot picks survive 1 in 4.
        const Edge& e = current.edges[idx];
        const bool touches_hot = (e.src >= hot_base && e.src < hot_base + hot_span) ||
                                 (e.dst >= hot_base && e.dst < hot_base + hot_span);
        if (!touches_hot && rng.Below(4) != 0) {
          continue;
        }
      }
      take_index(idx);
    }

    // ---- Inserts.
    const uint64_t num_ins = total - std::min<uint64_t>(num_del, total);
    b.inserts.reserve(num_ins);
    for (uint64_t i = 0; i < num_ins; ++i) {
      b.inserts.push_back(RandomInsert(rng, current, hot_base, hot_span, hotspot));
    }

    prev_inserts = b.inserts;
    Apply(&current, b);
    batches_.push_back(std::move(b));
  }
}

void MutationLog::Apply(InputGraph* g, const MutationBatch& b) {
  if (!b.deletes.empty()) {
    // Multiset subtraction: remove one occurrence per delete record, keeping
    // the survivors' relative order (determinism of downstream binning).
    std::map<EdgeKey, uint64_t> pending;
    for (const Edge& e : b.deletes) {
      ++pending[ExactKey(e)];
    }
    uint64_t remaining = b.deletes.size();
    std::vector<Edge> kept;
    kept.reserve(g->edges.size() - std::min<uint64_t>(remaining, g->edges.size()));
    for (const Edge& e : g->edges) {
      if (remaining > 0) {
        auto it = pending.find(ExactKey(e));
        if (it != pending.end() && it->second > 0) {
          --it->second;
          --remaining;
          continue;
        }
      }
      kept.push_back(e);
    }
    CHAOS_CHECK_EQ(remaining, 0u);  // every delete must name a present edge
    g->edges = std::move(kept);
  }
  for (const Edge& e : b.inserts) {
    CHAOS_CHECK(e.src < g->num_vertices && e.dst < g->num_vertices);
    g->edges.push_back(e);
  }
}

InputGraph MutationLog::GraphAfter(uint64_t k) const {
  CHAOS_CHECK_LE(k, batches_.size());
  InputGraph g = base_;
  for (uint64_t i = 0; i < k; ++i) {
    Apply(&g, batches_[i]);
  }
  return g;
}

}  // namespace chaos
