#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/common.h"

namespace chaos {

EventQueue::EventQueue(EventQueueImpl impl) : impl_(impl) {
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    heap_.reserve(kInitialCapacity);
  } else {
    buckets_.resize(kInitialBuckets);
    cur_start_ = 0;
    cur_end_ = BucketWidth();
  }
}

void EventQueue::Push(TimeNs time, EventFn fn) {
  Event ev{time, next_seq_++, std::move(fn)};
  ++size_;
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    HeapPush(std::move(ev));
  } else {
    CalPush(std::move(ev));
  }
}

EventQueue::Event EventQueue::Pop() {
  CHAOS_CHECK(size_ > 0);
  --size_;
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    return HeapPop();
  }
  return CalPop();
}

const EventQueue::Event& EventQueue::Peek() {
  CHAOS_CHECK(size_ > 0);
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    return heap_.front();
  }
  CalLocateMin();
  return buckets_[cursor_].back();
}

// --------------------------------------------------------------- binary heap

void EventQueue::HeapPush(Event ev) {
  heap_.push_back(std::move(ev));
  SiftUp(heap_.size() - 1);
}

EventQueue::Event EventQueue::HeapPop() {
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
  return top;
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t smallest = i;
    if (left < n && Earlier(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < n && Earlier(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) {
      return;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

// ------------------------------------------------------------ calendar queue
//
// Invariants:
//  * cursor_ points at the bucket whose rotation window is
//    [cur_start_, cur_end_); no queued event has time < cur_start_
//    (Push rewinds the cursor if one arrives — the Simulator never
//    schedules behind `now`, so this is rare and cheap).
//  * cur_sorted_ means buckets_[cursor_] is sorted descending by
//    (time, seq), so back() is the bucket minimum and Pop is a pop_back.
//  * Buckets hold events from any rotation; events whose time falls
//    outside the current window are skipped until their rotation comes up.
//    A full fruitless rotation triggers a direct search for the global
//    minimum, bounding sparse-queue pops.

void EventQueue::JumpTo(TimeNs time) {
  cursor_ = BucketOf(time);
  const uint64_t base = (static_cast<uint64_t>(time) >> shift_) << shift_;
  cur_start_ = static_cast<TimeNs>(base);
  cur_end_ = cur_start_ + BucketWidth();
  cur_sorted_ = false;
}

void EventQueue::SortCurrent() {
  if (!cur_sorted_) {
    std::vector<Event>& b = buckets_[cursor_];
    std::sort(b.begin(), b.end(), Later);
    cur_sorted_ = true;
  }
}

void EventQueue::CalPush(Event ev) {
  if (size_ == 1) {
    // Sole event: jump straight to its window instead of rotating to it.
    JumpTo(ev.time);
  } else if (ev.time < cur_start_) {
    // Behind the cursor (still >= `now`; the window just advanced past it
    // during a Peek of a far-future event). Rewind so the scan finds it.
    JumpTo(ev.time);
  }
  const size_t idx = BucketOf(ev.time);
  std::vector<Event>& b = buckets_[idx];
  if (idx == cursor_ && cur_sorted_) {
    // Keep the drain bucket sorted: insert at the descending-order position.
    b.insert(std::upper_bound(b.begin(), b.end(), ev, Later), std::move(ev));
  } else {
    b.push_back(std::move(ev));
    if (idx == cursor_) {
      cur_sorted_ = false;
    }
  }
  if (size_ > buckets_.size() * kGrowOccupancy && buckets_.size() < kMaxBuckets) {
    Rebuild(buckets_.size() * 2);
  }
}

void EventQueue::CalLocateMin() {
  CHAOS_DCHECK(size_ > 0);
  size_t scanned = 0;
  while (true) {
    std::vector<Event>& b = buckets_[cursor_];
    if (!b.empty()) {
      SortCurrent();
      if (b.back().time < cur_end_) {
        // In-window bucket minimum: buckets already passed this rotation
        // only hold later-rotation events, and buckets ahead hold events
        // >= cur_end_, so this is the global minimum.
        return;
      }
    }
    cursor_ = (cursor_ + 1) & (buckets_.size() - 1);
    cur_start_ = cur_end_;
    cur_end_ += BucketWidth();
    cur_sorted_ = false;
    if (++scanned == buckets_.size()) {
      // Fruitless full rotation: the queue is sparse relative to the bucket
      // width. Find the global minimum directly and jump to its window.
      const Event* min_ev = nullptr;
      for (const std::vector<Event>& bucket : buckets_) {
        for (const Event& e : bucket) {
          if (min_ev == nullptr || Earlier(e, *min_ev)) {
            min_ev = &e;
          }
        }
      }
      CHAOS_DCHECK(min_ev != nullptr);
      JumpTo(min_ev->time);
      scanned = 0;
    }
  }
}

EventQueue::Event EventQueue::CalPop() {
  CalLocateMin();
  std::vector<Event>& b = buckets_[cursor_];
  Event ev = std::move(b.back());
  b.pop_back();  // remaining prefix stays sorted; cur_sorted_ still holds
  return ev;
}

void EventQueue::Rebuild(size_t new_bucket_count) {
  scratch_.clear();
  scratch_.reserve(size_);
  for (std::vector<Event>& b : buckets_) {
    for (Event& ev : b) {
      scratch_.push_back(std::move(ev));
    }
    b.clear();
  }
  CHAOS_DCHECK(scratch_.size() == size_);
  std::sort(scratch_.begin(), scratch_.end(), Earlier);

  // Re-estimate the bucket width from observed inter-event gaps so buckets
  // hold a handful of events each: width ~= 3x the mean gap over a sample
  // of the earliest events, rounded up to a power of two.
  const size_t sample = std::min<size_t>(scratch_.size(), 256);
  uint64_t gap_sum = 0;
  uint64_t gap_cnt = 0;
  for (size_t i = 1; i < sample; ++i) {
    const TimeNs d = scratch_[i].time - scratch_[i - 1].time;
    if (d > 0) {
      gap_sum += static_cast<uint64_t>(d);
      ++gap_cnt;
    }
  }
  if (gap_cnt > 0) {
    const uint64_t target = 3 * (gap_sum / gap_cnt);
    int shift = 0;
    while (shift < kMaxShift && (uint64_t{1} << shift) < target) {
      ++shift;
    }
    shift_ = shift;
  }

  buckets_.clear();
  buckets_.resize(new_bucket_count);
  JumpTo(scratch_.front().time);
  for (Event& ev : scratch_) {
    buckets_[BucketOf(ev.time)].push_back(std::move(ev));
  }
  scratch_.clear();
}

}  // namespace chaos
