// FIFO bandwidth resources: the timing model for storage devices, NIC links
// and per-machine CPUs.
//
// A FifoResource serves requests one at a time in arrival order. Issuing a
// request at time t with service time s completes at
//     done = max(t, busy_until) + s,
// which models queueing delay behind earlier requests exactly the way the
// paper's storage engine behaves ("a storage engine always serves a request
// for a chunk in its entirety before serving the next request", §6.2).
#ifndef CHAOS_SIM_RESOURCE_H_
#define CHAOS_SIM_RESOURCE_H_

#include <coroutine>
#include <string>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/common.h"

namespace chaos {

class FifoResource {
 public:
  FifoResource(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {}
  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;
  FifoResource(FifoResource&&) = default;

  // Awaitable: completes when the request has been fully serviced.
  auto Acquire(TimeNs service) {
    struct Awaiter {
      FifoResource* res;
      TimeNs service;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        const TimeNs done = res->Reserve(service);
        res->sim_->PostAt(done, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    CHAOS_CHECK_GE(service, 0);
    return Awaiter{this, service};
  }

  // Reserves a service slot without awaiting; returns the completion time.
  // Used by fire-and-forget paths that schedule their own continuation.
  TimeNs Reserve(TimeNs service) {
    CHAOS_CHECK_GE(service, 0);
    const TimeNs start = busy_until_ > sim_->now() ? busy_until_ : sim_->now();
    const TimeNs done = start + service;
    busy_until_ = done;
    total_busy_ += service;
    ++num_requests_;
    return done;
  }

  // Queueing backlog at time `now` (0 when idle).
  TimeNs Backlog(TimeNs now) const { return busy_until_ > now ? busy_until_ - now : 0; }

  TimeNs busy_until() const { return busy_until_; }
  // Total service time charged; busy fraction = total_busy / horizon.
  TimeNs total_busy() const { return total_busy_; }
  uint64_t num_requests() const { return num_requests_; }
  const std::string& name() const { return name_; }
  Simulator* sim() const { return sim_; }

 private:
  Simulator* sim_;
  std::string name_;
  TimeNs busy_until_ = 0;
  TimeNs total_busy_ = 0;
  uint64_t num_requests_ = 0;
};

}  // namespace chaos

#endif  // CHAOS_SIM_RESOURCE_H_
