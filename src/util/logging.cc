#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "util/common.h"

namespace chaos {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
std::atomic<uint64_t> g_counts[5];
// Per-thread counts backing the per-scope accounting (ThreadLogCounts):
// plain integers, no synchronization needed — the owning thread is the only
// writer and the only reader.
thread_local uint64_t t_counts[5];
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

uint64_t LogCountForLevel(LogLevel level) {
  const int idx = static_cast<int>(level);
  CHAOS_CHECK(idx >= 0 && idx < 5);
  return g_counts[idx].load();
}

LogCounts GlobalLogCounts() {
  LogCounts out;
  for (size_t i = 0; i < out.per_level.size(); ++i) {
    out.per_level[i] = g_counts[i].load();
  }
  return out;
}

LogCounts ThreadLogCounts() {
  LogCounts out;
  for (size_t i = 0; i < out.per_level.size(); ++i) {
    out.per_level[i] = t_counts[i];
  }
  return out;
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...) {
  const int idx = static_cast<int>(level);
  if (idx >= 0 && idx < 5) {
    g_counts[idx].fetch_add(1);
    t_counts[idx] += 1;
  }
  if (idx < g_min_level.load()) {
    return;
  }
  char buffer[2048];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line, buffer);
}

[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& msg) {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s %s\n", Basename(file), line, expr,
               msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace chaos
