// Tests for the storage engine: serve-once-per-epoch semantics, epoch reset,
// indexed vertex chunks, remaining-bytes (D estimate), deletion, placement
// uniformity, file spill, and the centralized directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "storage/chunk.h"
#include "storage/directory.h"
#include "storage/storage_engine.h"
#include "util/rng.h"

namespace chaos {
namespace {

NetworkConfig FastNet() {
  NetworkConfig c;
  c.nic_bandwidth_bps = 1e9;
  c.one_way_latency = 100;
  c.local_latency = 10;
  c.model_incast = false;
  return c;
}

StorageConfig FastStorage() {
  StorageConfig c;
  c.bandwidth_bps = 1e9;
  c.access_latency = 50;
  c.chunk_bytes = 1024;
  return c;
}

struct Rig {
  Simulator sim;
  Network net;
  MessageBus bus;
  std::vector<std::unique_ptr<StorageEngine>> engines;

  explicit Rig(int machines, StorageConfig sc = FastStorage())
      : net(&sim, machines, FastNet()), bus(&sim, &net) {
    for (MachineId m = 0; m < machines; ++m) {
      engines.push_back(std::make_unique<StorageEngine>(&sim, &bus, m, sc));
      engines.back()->Start();
    }
  }

  void Shutdown() {
    for (auto& e : engines) {
      Message m;
      m.src = 0;
      m.dst = e->machine();
      m.service = kStorageService;
      m.type = kStorageShutdown;
      m.wire_bytes = kControlMsgBytes;
      bus.PostSend(std::move(m));
    }
  }
};

Chunk IntChunk(uint32_t index, std::vector<int> values, uint64_t model_bytes = 1000) {
  return MakeChunk<int>(index, model_bytes, std::move(values));
}

Message ReadReq(MachineId src, MachineId dst, SetId set, uint64_t epoch) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.service = kStorageService;
  m.type = kReadChunkReq;
  m.wire_bytes = kControlMsgBytes;
  m.body = ReadChunkReq{set, epoch};
  return m;
}

Message WriteReq(MachineId src, MachineId dst, SetId set, Chunk chunk) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.service = kStorageService;
  m.type = kWriteChunkReq;
  m.wire_bytes = chunk.model_bytes + kControlMsgBytes;
  m.body = WriteChunkReq{set, std::move(chunk)};
  return m;
}

// ------------------------------------------------------------------ chunks

TEST(ChunkTest, MakeAndViewRoundTrip) {
  auto c = IntChunk(3, {1, 2, 3, 4});
  EXPECT_EQ(c.index, 3u);
  EXPECT_EQ(c.count, 4u);
  EXPECT_EQ(c.payload_bytes, 4 * sizeof(int));
  auto span = ChunkSpan<int>(c);
  ASSERT_EQ(span.size(), 4u);
  EXPECT_EQ(span[0], 1);
  EXPECT_EQ(span[3], 4);
}

TEST(ChunkTest, EmptyChunkHasEmptySpan) {
  auto c = MakeChunk<int>(0, 0, {});
  EXPECT_TRUE(ChunkSpan<int>(c).empty());
}

TEST(ChunkTest, SharedPayloadSurvivesCopies) {
  auto c = IntChunk(0, {7});
  Chunk copy = c;
  c.data.reset();
  EXPECT_EQ(ChunkSpan<int>(copy)[0], 7);
}

TEST(ChunkTest, UpdatesParityAlternates) {
  EXPECT_EQ(UpdatesFor(0), SetKind::kUpdatesEven);
  EXPECT_EQ(UpdatesFor(1), SetKind::kUpdatesOdd);
  EXPECT_EQ(UpdatesFor(2), SetKind::kUpdatesEven);
}

TEST(ChunkTest, SetIdHashAndNames) {
  SetId a{1, SetKind::kEdges};
  SetId b{1, SetKind::kEdges};
  SetId c{2, SetKind::kEdges};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(SetIdHash{}(a), SetIdHash{}(c));
  EXPECT_EQ(SetIdName(a), "edges/p1");
}

// ------------------------------------------------------------------ engine

TEST(StorageEngineTest, ServeOncePerEpoch) {
  Rig rig(1);
  const SetId set{0, SetKind::kEdges};
  for (uint32_t i = 0; i < 5; ++i) {
    rig.engines[0]->HostAddChunk(set, IntChunk(i, {static_cast<int>(i)}));
  }
  std::vector<int> got;
  rig.sim.Spawn([](Rig* rig, SetId set, std::vector<int>* got) -> Task<> {
    while (true) {
      Message resp = co_await rig->bus.Call(ReadReq(0, 0, set, /*epoch=*/1));
      const auto& r = std::any_cast<const ReadChunkResp&>(resp.body);
      if (!r.ok) {
        break;
      }
      got->push_back(ChunkSpan<int>(r.chunk)[0]);
    }
    rig->Shutdown();
  }(&rig, set, &got));
  rig.sim.Run();
  EXPECT_EQ(rig.sim.live_tasks(), 0u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(rig.engines[0]->chunks_served(), 5u);
  EXPECT_EQ(rig.engines[0]->empty_responses(), 1u);
}

TEST(StorageEngineTest, NewEpochResetsCursor) {
  Rig rig(1);
  const SetId set{0, SetKind::kEdges};
  rig.engines[0]->HostAddChunk(set, IntChunk(0, {42}));
  int reads = 0;
  rig.sim.Spawn([](Rig* rig, SetId set, int* reads) -> Task<> {
    for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
      Message resp = co_await rig->bus.Call(ReadReq(0, 0, set, epoch));
      const auto& r = std::any_cast<const ReadChunkResp&>(resp.body);
      CHAOS_CHECK(r.ok);
      CHAOS_CHECK_EQ(ChunkSpan<int>(r.chunk)[0], 42);
      ++*reads;
      // Second read within the same epoch must be empty.
      Message resp2 = co_await rig->bus.Call(ReadReq(0, 0, set, epoch));
      CHAOS_CHECK(!std::any_cast<const ReadChunkResp&>(resp2.body).ok);
    }
    rig->Shutdown();
  }(&rig, set, &reads));
  rig.sim.Run();
  EXPECT_EQ(reads, 3);
}

TEST(StorageEngineTest, MissingSetReturnsEmpty) {
  Rig rig(1);
  rig.sim.Spawn([](Rig* rig) -> Task<> {
    Message resp = co_await rig->bus.Call(ReadReq(0, 0, SetId{9, SetKind::kEdges}, 1));
    CHAOS_CHECK(!std::any_cast<const ReadChunkResp&>(resp.body).ok);
    rig->Shutdown();
  }(&rig));
  rig.sim.Run();
  EXPECT_EQ(rig.engines[0]->empty_responses(), 1u);
}

TEST(StorageEngineTest, WriteThenReadBack) {
  Rig rig(2);
  const SetId set{3, SetKind::kUpdatesEven};
  rig.sim.Spawn([](Rig* rig, SetId set) -> Task<> {
    std::vector<int> payload(3);
    payload[0] = 5;
    payload[1] = 6;
    payload[2] = 7;
    Message ack = co_await rig->bus.Call(WriteReq(0, 1, set, IntChunk(0, std::move(payload))));
    CHAOS_CHECK_EQ(ack.type, static_cast<uint32_t>(kWriteAck));
    Message resp = co_await rig->bus.Call(ReadReq(0, 1, set, 0));
    const auto& r = std::any_cast<const ReadChunkResp&>(resp.body);
    CHAOS_CHECK(r.ok);
    auto span = ChunkSpan<int>(r.chunk);
    CHAOS_CHECK_EQ(span.size(), 3u);
    CHAOS_CHECK_EQ(span[2], 7);
    rig->Shutdown();
  }(&rig, set));
  rig.sim.Run();
  EXPECT_EQ(rig.engines[1]->bytes_written(), 1000u);
  EXPECT_EQ(rig.engines[1]->bytes_read(), 1000u);
}

TEST(StorageEngineTest, UpdatePayloadFreedAfterServe) {
  Rig rig(1);
  const SetId set{0, SetKind::kUpdatesEven};
  rig.engines[0]->HostAddChunk(set, IntChunk(0, {1}));
  rig.sim.Spawn([](Rig* rig, SetId set) -> Task<> {
    Message resp = co_await rig->bus.Call(ReadReq(0, 0, set, 0));
    CHAOS_CHECK(std::any_cast<const ReadChunkResp&>(resp.body).ok);
    rig->Shutdown();
  }(&rig, set));
  rig.sim.Run();
  const auto* chunks = rig.engines[0]->HostGetSet(set);
  ASSERT_NE(chunks, nullptr);
  EXPECT_EQ((*chunks)[0].data, nullptr);  // payload released
}

TEST(StorageEngineTest, EdgePayloadRetainedAfterServe) {
  Rig rig(1);
  const SetId set{0, SetKind::kEdges};
  rig.engines[0]->HostAddChunk(set, IntChunk(0, {1}));
  rig.sim.Spawn([](Rig* rig, SetId set) -> Task<> {
    Message resp = co_await rig->bus.Call(ReadReq(0, 0, set, 0));
    CHAOS_CHECK(std::any_cast<const ReadChunkResp&>(resp.body).ok);
    rig->Shutdown();
  }(&rig, set));
  rig.sim.Run();
  EXPECT_NE((*rig.engines[0]->HostGetSet(set))[0].data, nullptr);
}

TEST(StorageEngineTest, IndexedReadAndOverwrite) {
  Rig rig(1);
  const SetId set{0, SetKind::kVertices};
  rig.engines[0]->HostAddChunk(set, IntChunk(7, {100}));
  rig.sim.Spawn([](Rig* rig, SetId set) -> Task<> {
    // Read chunk #7.
    Message m;
    m.src = 0;
    m.dst = 0;
    m.service = kStorageService;
    m.type = kReadIndexedReq;
    m.wire_bytes = kControlMsgBytes;
    m.body = ReadIndexedReq{set, 7, false, 0};
    Message resp = co_await rig->bus.Call(std::move(m));
    const auto& r = std::any_cast<const ReadChunkResp&>(resp.body);
    CHAOS_CHECK(r.ok);
    CHAOS_CHECK_EQ(ChunkSpan<int>(r.chunk)[0], 100);
    // Overwrite chunk #7 and read again.
    std::vector<int> payload(1, 200);
    (void)co_await rig->bus.Call(WriteReq(0, 0, set, IntChunk(7, std::move(payload))));
    Message m2;
    m2.src = 0;
    m2.dst = 0;
    m2.service = kStorageService;
    m2.type = kReadIndexedReq;
    m2.wire_bytes = kControlMsgBytes;
    m2.body = ReadIndexedReq{set, 7, false, 0};
    Message resp2 = co_await rig->bus.Call(std::move(m2));
    CHAOS_CHECK_EQ(ChunkSpan<int>(std::any_cast<const ReadChunkResp&>(resp2.body).chunk)[0], 200);
    rig->Shutdown();
  }(&rig, set));
  rig.sim.Run();
  EXPECT_EQ(rig.engines[0]->NumChunks(set), 1u);  // overwrite, not append
}

TEST(StorageEngineTest, RemainingBytesTracksConsumption) {
  Rig rig(1);
  const SetId set{0, SetKind::kEdges};
  for (uint32_t i = 0; i < 4; ++i) {
    rig.engines[0]->HostAddChunk(set, IntChunk(i, {1}, 250));
  }
  EXPECT_EQ(rig.engines[0]->RemainingBytes(set, 1), 1000u);
  rig.sim.Spawn([](Rig* rig, SetId set) -> Task<> {
    (void)co_await rig->bus.Call(ReadReq(0, 0, set, 1));
    CHAOS_CHECK_EQ(rig->engines[0]->RemainingBytes(set, 1), 750u);
    (void)co_await rig->bus.Call(ReadReq(0, 0, set, 1));
    CHAOS_CHECK_EQ(rig->engines[0]->RemainingBytes(set, 1), 500u);
    // A fresh epoch sees the full size again.
    CHAOS_CHECK_EQ(rig->engines[0]->RemainingBytes(set, 2), 1000u);
    rig->Shutdown();
  }(&rig, set));
  rig.sim.Run();
}

TEST(StorageEngineTest, DeleteSetRemovesData) {
  Rig rig(1);
  const SetId set{0, SetKind::kUpdatesOdd};
  rig.engines[0]->HostAddChunk(set, IntChunk(0, {1}));
  rig.sim.Spawn([](Rig* rig, SetId set) -> Task<> {
    Message m;
    m.src = 0;
    m.dst = 0;
    m.service = kStorageService;
    m.type = kDeleteSetReq;
    m.wire_bytes = kControlMsgBytes;
    m.body = DeleteSetReq{set};
    Message ack = co_await rig->bus.Call(std::move(m));
    CHAOS_CHECK_EQ(ack.type, static_cast<uint32_t>(kDeleteAck));
    Message resp = co_await rig->bus.Call(ReadReq(0, 0, set, 5));
    CHAOS_CHECK(!std::any_cast<const ReadChunkResp&>(resp.body).ok);
    rig->Shutdown();
  }(&rig, set));
  rig.sim.Run();
  EXPECT_EQ(rig.engines[0]->NumChunks(set), 0u);
}

// Property: N concurrent readers draining one set see every chunk exactly
// once, regardless of interleaving — the foundation of sync-free stealing.
TEST(StorageEngineTest, PropertyConcurrentReadersDisjointChunks) {
  Rig rig(4);
  const SetId set{0, SetKind::kEdges};
  constexpr int kChunks = 64;
  for (uint32_t i = 0; i < kChunks; ++i) {
    rig.engines[2]->HostAddChunk(set, IntChunk(i, {static_cast<int>(i)}));
  }
  std::vector<int> seen;
  int finished = 0;
  for (MachineId reader = 0; reader < 4; ++reader) {
    rig.sim.Spawn([](Rig* rig, SetId set, MachineId me, std::vector<int>* seen,
                     int* finished) -> Task<> {
      while (true) {
        Message resp = co_await rig->bus.Call(ReadReq(me, 2, set, 1));
        const auto& r = std::any_cast<const ReadChunkResp&>(resp.body);
        if (!r.ok) {
          break;
        }
        seen->push_back(ChunkSpan<int>(r.chunk)[0]);
      }
      if (++*finished == 4) {
        rig->Shutdown();
      }
    }(&rig, set, reader, &seen, &finished));
  }
  rig.sim.Run();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kChunks));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kChunks; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

TEST(StorageEngineTest, DeviceChargesLatencyPlusBandwidth) {
  Rig rig(1);
  const SetId set{0, SetKind::kEdges};
  rig.engines[0]->HostAddChunk(set, IntChunk(0, {1}, /*model_bytes=*/1000));
  rig.sim.Spawn([](Rig* rig, SetId set) -> Task<> {
    (void)co_await rig->bus.Call(ReadReq(0, 0, set, 1));
    rig->Shutdown();
  }(&rig, set));
  rig.sim.Run();
  // access latency 50 + 1000 B at 1 GB/s (1000 ns) = 1050 ns busy.
  EXPECT_EQ(rig.engines[0]->device().total_busy(), 1050);
}

TEST(StorageEngineTest, HostSetListing) {
  Rig rig(1);
  rig.engines[0]->HostAddChunk(SetId{0, SetKind::kEdges}, IntChunk(0, {1}));
  rig.engines[0]->HostAddChunk(SetId{1, SetKind::kVertices}, IntChunk(0, {2}));
  EXPECT_EQ(rig.engines[0]->HostListSets().size(), 2u);
  rig.engines[0]->HostDeleteSet(SetId{0, SetKind::kEdges});
  EXPECT_EQ(rig.engines[0]->HostListSets().size(), 1u);
  rig.Shutdown();
  rig.sim.Run();
}

// -------------------------------------------------------------- placement

TEST(PlacementTest, VertexChunkHomeDeterministic) {
  for (PartitionId p = 0; p < 8; ++p) {
    for (uint32_t c = 0; c < 8; ++c) {
      EXPECT_EQ(VertexChunkHome(p, c, 16), VertexChunkHome(p, c, 16));
      EXPECT_LT(VertexChunkHome(p, c, 16), 16);
      EXPECT_GE(VertexChunkHome(p, c, 16), 0);
    }
  }
}

TEST(PlacementTest, VertexChunkHomeRoughlyUniform) {
  constexpr int kMachines = 8;
  std::vector<int> counts(kMachines, 0);
  for (PartitionId p = 0; p < 64; ++p) {
    for (uint32_t c = 0; c < 64; ++c) {
      counts[static_cast<size_t>(VertexChunkHome(p, c, kMachines))]++;
    }
  }
  const double expected = 64.0 * 64.0 / kMachines;
  for (const int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.2);
  }
}

// ------------------------------------------------------------------ spill

TEST(FileSpillTest, RoundTripThroughRealFiles) {
  const std::string dir = ::testing::TempDir() + "/chaos_spill_test";
  {
    StorageConfig sc = FastStorage();
    sc.spill_dir = dir;
    Rig rig(1, sc);
    const SetId set{0, SetKind::kEdges};
    rig.engines[0]->HostAddChunk(set, IntChunk(0, {11, 22, 33}));
    // Payload must have been dropped from memory and written to disk.
    EXPECT_EQ((*rig.engines[0]->HostGetSet(set))[0].data, nullptr);
    EXPECT_FALSE(std::filesystem::is_empty(dir));
    std::vector<int> got;
    rig.sim.Spawn([](Rig* rig, SetId set, std::vector<int>* got) -> Task<> {
      Message resp = co_await rig->bus.Call(ReadReq(0, 0, set, 1));
      const auto& r = std::any_cast<const ReadChunkResp&>(resp.body);
      CHAOS_CHECK(r.ok);
      for (int v : ChunkSpan<int>(r.chunk)) {
        got->push_back(v);
      }
      rig->Shutdown();
    }(&rig, set, &got));
    rig.sim.Run();
    EXPECT_EQ(got, (std::vector<int>{11, 22, 33}));
  }
  // Engine destructor cleans the spill directory.
  EXPECT_FALSE(std::filesystem::exists(dir));
}

// -------------------------------------------------------------- directory

TEST(DirectoryTest, AllocThenNextRoundTrip) {
  Rig rig(4);
  DirectoryServer dir(&rig.sim, &rig.bus, /*home=*/0, /*machines=*/4, /*seed=*/7);
  dir.Start();
  const SetId set{2, SetKind::kEdges};
  rig.sim.Spawn([](Rig* rig, DirectoryServer* dir, SetId set) -> Task<> {
    // Allocate 8 chunks through the directory and write them there.
    for (uint32_t i = 0; i < 8; ++i) {
      Message req;
      req.src = 1;
      req.dst = dir->home();
      req.service = kDirectoryService;
      req.type = kDirAllocReq;
      req.wire_bytes = kControlMsgBytes;
      req.body = DirAllocReq{set};
      Message resp = co_await rig->bus.Call(std::move(req));
      const auto& alloc = std::any_cast<const DirAllocResp&>(resp.body);
      CHAOS_CHECK(alloc.engine >= 0 && alloc.engine < 4);
      std::vector<int> payload(1, static_cast<int>(i));
      (void)co_await rig->bus.Call(
          WriteReq(1, alloc.engine, set, IntChunk(i, std::move(payload))));
    }
    // Drain via directory-guided indexed reads.
    std::set<int> seen;
    while (true) {
      Message req;
      req.src = 1;
      req.dst = dir->home();
      req.service = kDirectoryService;
      req.type = kDirNextReq;
      req.wire_bytes = kControlMsgBytes;
      req.body = DirNextReq{set, 1};
      Message resp = co_await rig->bus.Call(std::move(req));
      const auto& next = std::any_cast<const DirNextResp&>(resp.body);
      if (!next.ok) {
        break;
      }
      Message read;
      read.src = 1;
      read.dst = next.engine;
      read.service = kStorageService;
      read.type = kReadIndexedReq;
      read.wire_bytes = kControlMsgBytes;
      read.body = ReadIndexedReq{set, next.index, true, 1};
      Message rresp = co_await rig->bus.Call(std::move(read));
      const auto& r = std::any_cast<const ReadChunkResp&>(rresp.body);
      CHAOS_CHECK(r.ok);
      seen.insert(ChunkSpan<int>(r.chunk)[0]);
    }
    CHAOS_CHECK_EQ(seen.size(), 8u);
    // Shut the directory down as well.
    Message stop;
    stop.src = 1;
    stop.dst = dir->home();
    stop.service = kDirectoryService;
    stop.type = kDirShutdown;
    stop.wire_bytes = kControlMsgBytes;
    rig->bus.PostSend(std::move(stop));
    rig->Shutdown();
  }(&rig, &dir, set));
  rig.sim.Run();
  EXPECT_EQ(rig.sim.live_tasks(), 0u);
  EXPECT_GE(dir.lookups(), 17u);  // 8 allocs + 9 next lookups
}

TEST(DirectoryTest, SerializesLookupsOnCpu) {
  Rig rig(2);
  DirectoryServer dir(&rig.sim, &rig.bus, 0, 2, 7, /*lookup_cost=*/1000);
  dir.Start();
  rig.sim.Spawn([](Rig* rig, DirectoryServer* /*dir*/) -> Task<> {
    for (uint32_t i = 0; i < 10; ++i) {
      Message req;
      req.src = 1;
      req.dst = 0;
      req.service = kDirectoryService;
      req.type = kDirAllocReq;
      req.wire_bytes = kControlMsgBytes;
      req.body = DirAllocReq{SetId{0, SetKind::kEdges}};
      (void)co_await rig->bus.Call(std::move(req));
    }
    Message stop;
    stop.src = 1;
    stop.dst = 0;
    stop.service = kDirectoryService;
    stop.type = kDirShutdown;
    stop.wire_bytes = kControlMsgBytes;
    rig->bus.PostSend(std::move(stop));
    rig->Shutdown();
  }(&rig, &dir));
  rig.sim.Run();
  EXPECT_EQ(dir.cpu().total_busy(), 10000);
}

}  // namespace
}  // namespace chaos
