// The barrier and 2-phase-checkpoint FSMs of the engine core (paper §5.2,
// §6.6). Untemplated: aggregator state crosses the wire as kernel-
// serialized blobs (protocol.h), and the coordinator folds them through
// the type-erased ProgramKernel.
#include <string>
#include <utility>
#include <vector>

#include "core/engine_core.h"
#include "core/mutation_feed.h"

namespace chaos {

Task<BarrierOutcome> EngineCore::Barrier(bool advance) {
  BucketTimer t(ctx_.sim, metrics_, Bucket::kBarrier);
  Message req;
  req.src = ctx_.machine;
  req.dst = 0;
  req.service = kComputeService;
  req.type = kBarrierArrive;
  req.wire_bytes = kControlMsgBytes + kernel_->global_wire_bytes();
  BarrierArriveMsg body;
  body.phase_id = next_phase_id_++;
  body.local = kernel_->TakeLocalBlob();  // snapshots and resets the delta
  body.vertices_changed = changed_;
  body.advance = advance;
  body.failed = Dead();  // barrier doubles as the failure detector (§6.6)
  body.superstep = superstep_;
  req.body = std::move(body);
  changed_ = 0;
  Message resp = co_await ctx_.bus->Call(std::move(req));
  const auto& release = std::any_cast<const BarrierReleaseMsg&>(resp.body);
  kernel_->SetGlobal(release.global);
  if (release.crash) {
    // The coordinator stops serving barriers after a crash release; every
    // caller must unwind to Main without arriving at another barrier.
    aborted_ = true;
  }
  co_return BarrierOutcome{release.done, release.crash, release.mutate};
}

Task<> EngineCore::BarrierService() {
  SimQueue<Message>& inbox = ctx_.bus->Inbox(0, kComputeService);
  std::vector<uint8_t> canonical = kernel_->GlobalBlob();
  const int m = ctx_.machines();
  while (true) {
    std::vector<Message> arrivals;
    arrivals.reserve(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      Message msg = co_await inbox.Pop();
      CHAOS_CHECK_EQ(msg.type, static_cast<uint32_t>(kBarrierArrive));
      arrivals.push_back(std::move(msg));
    }
    const auto& first = std::any_cast<const BarrierArriveMsg&>(arrivals.front().body);
    const bool advance = first.advance;
    const uint64_t superstep = first.superstep;
    bool done = false;
    // Failure detection (§6.6): any flagged arrival — at any barrier —
    // aborts the run cluster-wide. Recovery is a fresh cluster resuming
    // from the last committed checkpoint (core/recovery.h).
    bool crash = false;
    bool mutate = false;
    for (const Message& msg : arrivals) {
      crash = crash || std::any_cast<const BarrierArriveMsg&>(msg.body).failed;
    }
    if (advance) {
      std::vector<uint8_t> folded = canonical;
      uint64_t changed = 0;
      for (const Message& msg : arrivals) {
        const auto& body = std::any_cast<const BarrierArriveMsg&>(msg.body);
        CHAOS_CHECK_EQ(body.phase_id, first.phase_id);
        CHAOS_CHECK_EQ(body.superstep, superstep);
        kernel_->ReduceGlobal(folded.data(), body.local.data());
        changed += body.vertices_changed;
      }
      done = kernel_->Advance(folded.data(), superstep, changed);
      canonical = std::move(folded);
      crash = crash || (ctx_.config->crash_after_superstep >= 0 &&
                        static_cast<uint64_t>(ctx_.config->crash_after_superstep) == superstep);
      // Evolving graphs: the program converged but mutation batches remain.
      // Plan the next epoch (a zero-sim-time host callback — every machine
      // is parked here, so reads of converged engine state are race-free)
      // and release with `mutate` instead of `done`: engines run the apply
      // stage and re-converge from the reseeded frontier.
      if (!crash && done && ctx_.mutations != nullptr && ctx_.mutations->HasPending()) {
        ctx_.mutations->Plan();
        mutate = true;
        done = false;
      }
      if (!crash) {
        superstep_end_times_.push_back(ctx_.sim->now());
      }
    }
    for (const Message& msg : arrivals) {
      BarrierReleaseMsg release;
      release.global = canonical;
      release.done = done;
      release.crash = crash;
      release.mutate = mutate;
      ctx_.bus->PostReply(msg, kBarrierRelease, kControlMsgBytes + kernel_->global_wire_bytes(),
                          std::move(release));
    }
    if (crash || (advance && done)) {
      co_return;
    }
  }
}

// ----------------------------------------------------------- checkpoint

Task<> EngineCore::CommitCheckpoint() {
  co_await Barrier(/*advance=*/false);  // phase 1: all writes acked cluster-wide
  if (aborted_) {
    co_return;  // failure before the commit point: this checkpoint never was
  }
  // Snapshot the in-flight update set of the resume superstep into the
  // incoming snapshot side. Updates emitted by the just-finished gather
  // (targeting superstep_ + 1) cannot be regenerated from the vertex
  // checkpoint — resume re-runs that superstep's *scatter*, not the
  // previous gather — so they are part of the recoverable state. For
  // pure-scatter programs (WantScatter always true) this set is empty and
  // the snapshot costs only the scan handshakes.
  const SetKind new_usnap =
      checkpoint_counter_ % 2 == 0 ? SetKind::kUpdatesCkptA : SetKind::kUpdatesCkptB;
  {
    BucketTimer t(ctx_.sim, metrics_, Bucket::kCheckpoint);
    ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
    for (const PartitionId p : own_partitions_) {
      ChunkFetcher fetcher(&ctx_, &rng_, UpdatesSet(p, superstep_ + 1), CheckpointScanEpoch(),
                           ctx_.config->fetch_window(), LocalMasterTarget(parts_->Master(p)),
                           /*preserve_payload=*/true);
      fetcher.Start();
      while (true) {
        auto chunk = co_await fetcher.Next();
        if (!chunk.has_value()) {
          break;
        }
        co_await writer.Write(SetId{p, new_usnap}, std::move(*chunk), ctx_.machine);
      }
    }
    co_await writer.Drain();
  }
  co_await Barrier(/*advance=*/false);  // update snapshots durable cluster-wide
  if (aborted_) {
    co_return;  // failure before the commit point: prior checkpoint intact
  }
  kernel_->CommitCheckpointGlobal();
  checkpointed_superstep_ = superstep_ + 1;
  has_checkpoint_ = true;
  // Evolving graphs: a recovery import needs the edge side and the number
  // of mutation epochs baked into this checkpoint. When forced from the
  // apply stage the flip has already committed, so EdgesKind() is the
  // post-batch side; planned epochs == durably applied epochs here.
  checkpoint_edges_kind_ = EdgesKind();
  checkpoint_epoch_ = ctx_.mutations == nullptr ? 0 : ctx_.mutations->applied_epochs();
  const SetKind old_side =
      checkpoint_counter_ % 2 == 0 ? SetKind::kCheckpointB : SetKind::kCheckpointA;
  const SetKind old_usnap =
      checkpoint_counter_ % 2 == 0 ? SetKind::kUpdatesCkptB : SetKind::kUpdatesCkptA;
  ++checkpoint_counter_;  // commit point passed: the new side is current
  {
    BucketTimer t(ctx_.sim, metrics_, Bucket::kCheckpoint);
    for (const PartitionId p : own_partitions_) {
      co_await DeleteSetEverywhere(&ctx_, SetId{p, old_side});
      co_await DeleteSetEverywhere(&ctx_, SetId{p, old_usnap});
    }
  }
  co_await Barrier(/*advance=*/false);  // phase 2: commit visible everywhere
}

// ------------------------------------------------------------ mutations

Task<> EngineCore::ApplyMutationStage() {
  CHAOS_CHECK(ctx_.mutations != nullptr);
  const MutationDelta& delta = ctx_.mutations->Current();
  const TimeNs start = ctx_.sim->now();
  const SetKind old_kind = EdgesKind();
  const SetKind new_kind =
      old_kind == SetKind::kEdges ? SetKind::kEdgesB : SetKind::kEdges;
  {
    BucketTimer t(ctx_.sim, metrics_, Bucket::kMutate);
    const auto& cost = ctx_.cost();
    ChunkWriter writer(&ctx_, &rng_, ctx_.config->fetch_window());
    RecordBinner binner(parts_, sizeof(Edge), meta_.edge_wire_bytes,
                        ctx_.config->chunk_bytes, ctx_.arena,
                        RecordBinner::Format::kEdgeSoA);
    for (const PartitionId p : own_partitions_) {
      // Stream the old edge side of the partition — the read cost of
      // retiring the pre-batch edge set. The payloads are discarded: the
      // replacement below is the host-planned full post-batch edge list,
      // so the output is deterministic regardless of chunk arrival order.
      ChunkFetcher fetcher(&ctx_, &rng_, SetId{p, old_kind}, MutateScanEpoch(),
                           ctx_.config->fetch_window(), LocalMasterTarget(parts_->Master(p)),
                           /*preserve_payload=*/true);
      fetcher.Start();
      while (true) {
        if (Dead()) {
          co_await fetcher.Cancel();
          break;
        }
        std::optional<Chunk> chunk = co_await fetcher.Next();
        if (!chunk.has_value()) {
          break;
        }
        co_await ctx_.sim->Delay(ctx_.CpuTime(chunk->count, cost.ns_per_edge_scatter) +
                                 ctx_.MessageTime());
        ++metrics_->chunks_fetched;
      }
      if (Dead()) {
        break;
      }
      // Bin the post-batch edge set of this partition to the other side.
      for (const Edge& e : delta.part_edges[p]) {
        binner.Add(p, e);
      }
      co_await binner.FlushPending(&writer, new_kind);
      co_await WriteSeedStates(p, &writer);
    }
    if (!Dead()) {
      co_await binner.FlushAll(&writer, new_kind);
    }
    co_await writer.Drain();
  }
  co_await Barrier(/*advance=*/false);  // commit point: new side durable cluster-wide
  if (aborted_) {
    co_return;  // old side + old checkpoint intact; this epoch replays on recovery
  }
  ++edges_flips_;  // committed: EdgesKind() now reads the post-batch side
  if (ctx_.config->checkpoint_interval > 0) {
    // Force a checkpoint commit so the durable checkpoint can never lag
    // behind the committed edge flip (recovery must resume on a consistent
    // (edges, states, epoch) triple). WriteSeedStates already wrote the hot
    // copy; this runs the ordinary 2-phase commit over it.
    co_await CommitCheckpoint();
    if (aborted_) {
      co_return;
    }
  }
  {
    BucketTimer t(ctx_.sim, metrics_, Bucket::kMutate);
    for (const PartitionId p : own_partitions_) {
      co_await DeleteSetEverywhere(&ctx_, SetId{p, old_kind});
    }
  }
  co_await Barrier(/*advance=*/false);  // old side retired everywhere
  if (aborted_) {
    co_return;
  }
  if (ctx_.machine == 0) {
    MutationEpochRecord rec;
    rec.epoch = ctx_.mutations->applied_epochs() - 1;
    rec.superstep = superstep_;
    rec.start_time = start;
    rec.end_time = ctx_.sim->now();
    rec.edges_inserted = delta.edges_inserted;
    rec.edges_deleted = delta.edges_deleted;
    rec.frontier = delta.frontier;
    rec.resets = delta.resets;
    mutation_records_.push_back(rec);
  }
}

Task<> EngineCore::WriteSeedStates(PartitionId p, ChunkWriter* writer) {
  const MutationDelta& delta = ctx_.mutations->Current();
  const uint64_t record_bytes = kernel_->vertex_state_bytes();
  CHAOS_CHECK_EQ(delta.vertex_state_bytes, record_bytes);
  const uint64_t count = parts_->Count(p);
  const VertexId base = parts_->Base(p);
  co_await ctx_.sim->Delay(ctx_.CpuTime(count, ctx_.cost().ns_per_vertex_apply));
  PooledBatch states;
  if (ctx_.pool != nullptr) {
    states.lease = co_await ctx_.pool->Acquire(count * record_bytes);
  }
  states.batch = RecordBatch(ctx_.arena, record_bytes, count);
  states.batch.CopyIn(0, delta.seed_states.data() + base * record_bytes, count);
  co_await WriteVertexSet(p, states.batch, SetKind::kVertices, writer);
  if (ctx_.config->checkpoint_interval > 0) {
    // Hot copy for the forced post-mutation checkpoint: the gather's
    // periodic copy (if any) holds pre-mutation states, and indexed
    // checkpoint chunks overwrite in place, so this replaces it.
    co_await WriteVertexSet(p, states.batch, CheckpointSide(), writer);
  }
}

}  // namespace chaos
