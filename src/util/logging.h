// Minimal leveled logging with printf-style formatting.
//
// Simulations are single-threaded per Simulator instance, but the parallel
// sweep executor (util/parallel.h) runs many simulations on concurrent host
// threads, so everything here is thread-safe: emission is guarded by a
// mutex and the message counters exist in two flavors — process-global
// atomics and per-thread counters that back per-scope accounting.
#ifndef CHAOS_UTIL_LOGGING_H_
#define CHAOS_UTIL_LOGGING_H_

#include <array>
#include <cstdarg>
#include <cstdint>
#include <string>

namespace chaos {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Sets the minimum level that is emitted. Default: kWarning (quiet for tests
// and benches; examples raise it to kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one log line if `level` is at or above the configured minimum.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

// Number of messages logged since process start, per level, across all
// threads (messages below the emission threshold still count).
uint64_t LogCountForLevel(LogLevel level);

// A snapshot of per-level message counts.
struct LogCounts {
  std::array<uint64_t, 5> per_level{};

  uint64_t at(LogLevel level) const { return per_level[static_cast<size_t>(level)]; }
  uint64_t warnings() const { return at(LogLevel::kWarning); }
  uint64_t errors() const { return at(LogLevel::kError); }
  uint64_t total() const {
    uint64_t sum = 0;
    for (const uint64_t c : per_level) {
      sum += c;
    }
    return sum;
  }
  LogCounts operator-(const LogCounts& rhs) const {
    LogCounts out;
    for (size_t i = 0; i < per_level.size(); ++i) {
      out.per_level[i] = per_level[i] - rhs.per_level[i];
    }
    return out;
  }
};

// Process-wide counts since start (sum over all threads).
LogCounts GlobalLogCounts();

// Counts of messages logged by the *calling thread* since it started. This
// is the per-scope building block for parallel sweeps: a sweep point runs
// start-to-finish on one executor thread (util/parallel.h contract), so a
// delta of ThreadLogCounts() around the point observes exactly that
// point's messages — concurrent trials cannot inflate each other's counts
// the way deltas of the process-global counters would.
LogCounts ThreadLogCounts();

// RAII per-scope counter: snapshot at construction, Delta() = messages this
// thread logged since then.
class ScopedLogCounts {
 public:
  ScopedLogCounts() : start_(ThreadLogCounts()) {}
  LogCounts Delta() const { return ThreadLogCounts() - start_; }

 private:
  LogCounts start_;
};

#define CHAOS_LOG(level, ...) \
  ::chaos::LogMessage((level), __FILE__, __LINE__, __VA_ARGS__)
#define CHAOS_LOG_DEBUG(...) CHAOS_LOG(::chaos::LogLevel::kDebug, __VA_ARGS__)
#define CHAOS_LOG_INFO(...) CHAOS_LOG(::chaos::LogLevel::kInfo, __VA_ARGS__)
#define CHAOS_LOG_WARN(...) CHAOS_LOG(::chaos::LogLevel::kWarning, __VA_ARGS__)
#define CHAOS_LOG_ERROR(...) CHAOS_LOG(::chaos::LogLevel::kError, __VA_ARGS__)

}  // namespace chaos

#endif  // CHAOS_UTIL_LOGGING_H_
