// Deterministic parallel sweep execution.
//
// Every `Simulator` instance is fully self-contained (its own event queue,
// its own seeded xoshiro streams, mutex-guarded logging), so independent
// simulated runs — the points of a bench sweep or a test matrix — can
// execute concurrently on host threads without sharing any simulation
// state. The contract that keeps parallel sweeps trustworthy:
//
//  * A sweep point must be a pure function of its inputs (graph, config,
//    seed). Points never share Simulator, Cluster, Rng or accumulator
//    objects; per-point statistics are merged by the caller after the
//    sweep joins, in declaration order.
//  * Each point that needs its own randomness derives it as
//    DeriveSeed(base_seed, point_index) — a splitmix64 mix of the two —
//    never from thread ids, wall clock, or a shared generator. Result:
//    every point's output is bitwise independent of the thread count and
//    of the schedule, so `--jobs 1` and `--jobs 8` agree byte-for-byte.
//  * A point runs start-to-finish on one executor thread (points never
//    migrate), so thread-local facilities (e.g. the per-scope log counters
//    in util/logging.h) observe exactly one point at a time.
#ifndef CHAOS_UTIL_PARALLEL_H_
#define CHAOS_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace chaos {

// Per-point seed derivation rule (see file comment): mixes the sweep's base
// seed with the point index so neighboring points get statistically
// independent streams and the mapping is stable across schedules.
constexpr uint64_t DeriveSeed(uint64_t base_seed, uint64_t point_index) {
  return Mix64(base_seed, point_index);
}

// A bounded pool of host worker threads executing indexed sweep points.
//
// ParallelFor(n, fn) hands indices 0..n-1 to the pool via an atomic cursor
// and blocks until all have completed; the calling thread participates, so
// jobs = 1 runs everything inline on the caller (today's sequential
// behavior, no threads ever spawned). Results must be written by index into
// caller-owned, pre-sized storage (RunPoints does this for you), which
// makes output order schedule-independent by construction.
class SweepExecutor {
 public:
  // jobs <= 0 selects the hardware concurrency.
  explicit SweepExecutor(int jobs = 0) : jobs_(NormalizeJobs(jobs)) {}

  SweepExecutor(const SweepExecutor&) = delete;
  SweepExecutor& operator=(const SweepExecutor&) = delete;

  ~SweepExecutor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
  }

  int jobs() const { return jobs_; }

  static int HardwareJobs() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  // Runs fn(i) for every i in [0, n); blocks until all points finished.
  // `fn` is invoked concurrently from up to jobs() threads and must only
  // touch per-point state (see the file comment for the full contract).
  // One sweep at a time per executor: ParallelFor calls from *distinct*
  // threads serialize on an internal mutex, while a nested call from
  // inside a running point (which would self-deadlock on that mutex) is
  // detected and runs its indices inline on the calling thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) {
      return;
    }
    if (jobs_ == 1 || n == 1 || t_in_sweep) {
      for (size_t i = 0; i < n; ++i) {
        fn(i);
      }
      return;
    }
    std::lock_guard<std::mutex> sweep_lock(sweep_mu_);
    EnsureWorkersStarted();
    auto batch = std::make_shared<Batch>();
    batch->fn = &fn;
    batch->limit = n;
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = batch;
    }
    work_cv_.notify_all();
    Drain(*batch);  // the caller is one of the jobs
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return batch->done == batch->limit; });
      current_.reset();
    }
  }

  // Runs every closure in `points` (index-parallel) and returns the results
  // in declaration order regardless of the schedule.
  template <typename R>
  std::vector<R> RunPoints(const std::vector<std::function<R()>>& points) {
    std::vector<R> results(points.size());
    ParallelFor(points.size(), [&](size_t i) { results[i] = points[i](); });
    return results;
  }

 private:
  // One ParallelFor invocation. Workers hold a shared_ptr, so a worker that
  // wakes late only ever touches the cursor of the batch it was handed —
  // never a successor's — and an exhausted cursor makes Drain a no-op.
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t limit = 0;
    std::atomic<size_t> next{0};
    size_t done = 0;  // guarded by the executor's mu_
  };

  // Real OS threads back each job; clamp so an absurd --jobs value cannot
  // exhaust the process thread limit (std::thread would throw, aborting).
  static constexpr int kMaxJobs = 512;
  static int NormalizeJobs(int jobs) {
    if (jobs <= 0) {
      return HardwareJobs();
    }
    return jobs < kMaxJobs ? jobs : kMaxJobs;
  }

  void EnsureWorkersStarted() {
    if (!threads_.empty()) {
      return;
    }
    threads_.reserve(static_cast<size_t>(jobs_ - 1));
    for (int i = 0; i < jobs_ - 1; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  // Claims and runs indices of `batch` until its cursor runs out.
  void Drain(Batch& batch) {
    t_in_sweep = true;  // nested ParallelFor from a point runs inline
    size_t finished = 0;
    for (;;) {
      const size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.limit) {
        break;
      }
      (*batch.fn)(i);
      ++finished;
    }
    t_in_sweep = false;
    if (finished > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      batch.done += finished;
      if (batch.done == batch.limit) {
        done_cv_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    std::shared_ptr<Batch> last;
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return shutdown_ || (current_ && current_ != last); });
        if (shutdown_) {
          return;
        }
        batch = current_;
      }
      last = batch;
      Drain(*batch);
    }
  }

  // True while this thread is executing a batch's points; a nested
  // ParallelFor (a point sweeping through the same shared executor) must
  // not block on sweep_mu_, which its own batch holds.
  static inline thread_local bool t_in_sweep = false;

  const int jobs_;
  std::mutex sweep_mu_;  // serializes ParallelFor calls from distinct threads

  std::mutex mu_;  // guards current_, Batch::done, shutdown_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> current_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace chaos

#endif  // CHAOS_UTIL_PARALLEL_H_
