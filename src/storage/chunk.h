// Chunks: the unit of storage, distribution and stealing (paper §6.2).
//
// A chunk couples a real payload (a contiguous array of POD records, shared
// and immutable once stored) with the size it is modeled to occupy on
// storage and on the wire. Payload bytes are what the algorithms compute on;
// model_bytes is what the simulator charges devices and NICs for, using the
// paper's compact/non-compact on-disk record sizes rather than C++ struct
// sizes.
#ifndef CHAOS_STORAGE_CHUNK_H_
#define CHAOS_STORAGE_CHUNK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace chaos {

// The named data sets Chaos keeps per streaming partition (paper §6.1), plus
// the raw input and checkpoint sets.
enum class SetKind : uint8_t {
  kInput = 0,        // unsorted input edge list (pre-processing input)
  kEdges = 1,        // partitioned edge set, re-read every scatter epoch
  kUpdatesEven = 2,  // update set for even iterations
  kUpdatesOdd = 3,   // update set for odd iterations
  kVertices = 4,     // vertex set, indexed access
  kCheckpointA = 5,  // 2-phase checkpoint, side A
  kCheckpointB = 6,  // 2-phase checkpoint, side B
  kDegrees = 7,      // degree-count updates produced during pre-processing
  // Commit-time snapshot of the resume superstep's in-flight update set
  // (gather-phase emissions are not regenerable from the vertex checkpoint
  // alone — scatter re-runs on resume, the previous gather does not). Side
  // parity follows kCheckpointA/B. Empty for pure-scatter programs.
  kUpdatesCkptA = 8,
  kUpdatesCkptB = 9,
  // Second edge side for evolving graphs: an apply-mutations stage writes
  // the post-batch edge set to the side the engine is NOT reading, commits
  // at a barrier, then flips EngineCore::EdgesSet and deletes the old side
  // — mutation application is atomic with respect to crashes, like the
  // two-phase checkpoint (engine_core.cc, ApplyMutationStage).
  kEdgesB = 10,
};

// The update-snapshot side paired with a committed checkpoint side.
constexpr SetKind UpdatesCkptFor(SetKind checkpoint_side) {
  return checkpoint_side == SetKind::kCheckpointA ? SetKind::kUpdatesCkptA
                                                  : SetKind::kUpdatesCkptB;
}

const char* SetKindName(SetKind kind);

// Indexed kinds are addressed by chunk index (hash-placed, overwritable);
// sequential kinds are append-only pools drained once per epoch.
constexpr bool IsIndexedKind(SetKind kind) {
  return kind == SetKind::kVertices || kind == SetKind::kCheckpointA ||
         kind == SetKind::kCheckpointB;
}

// Update-set parity for a given iteration (scatter of iteration i writes the
// set that gather of iteration i reads; gather/apply emissions write the
// other one, consumed by gather of iteration i+1).
inline SetKind UpdatesFor(uint64_t iteration) {
  return (iteration % 2 == 0) ? SetKind::kUpdatesEven : SetKind::kUpdatesOdd;
}

struct SetId {
  PartitionId partition = 0;
  SetKind kind = SetKind::kInput;

  friend bool operator==(const SetId& a, const SetId& b) {
    return a.partition == b.partition && a.kind == b.kind;
  }
};

struct SetIdHash {
  size_t operator()(const SetId& id) const {
    return static_cast<size_t>(
        HashCombine(id.partition, static_cast<uint64_t>(id.kind) + 0x9e37));
  }
};

std::string SetIdName(const SetId& id);

// In-memory layout of a chunk payload. kAoS is the default: `count` records
// of the set's record type back to back. kEdgeSoA is the vectorization
// layout for edge sets: four packed arrays src[count] | dst[count] |
// weight[count] | flags[count] (see core/edge_chunk_view.h). kUpdateSoA is
// the analogous layout for update sets: dst[count] followed by the packed
// update values (see core/update_chunk_view.h). Layout is a payload
// property — model_bytes (the simulated footprint) is identical for every
// layout, so the simulation cannot observe the choice.
enum class ChunkLayout : uint8_t {
  kAoS = 0,
  kEdgeSoA = 1,
  kUpdateSoA = 2,
};

struct Chunk {
  // Unique within its set. 64-bit: paper-scale runs with miniaturized
  // chunk_bytes push sequential-set chunk counts past what 32 bits can
  // index without silent wraparound (tests/core_test.cc pins this).
  uint64_t index = 0;
  uint64_t model_bytes = 0;    // modeled storage/wire footprint
  uint32_t count = 0;          // number of records in the payload
  uint64_t payload_bytes = 0;  // in-memory byte length of the payload array
  uint64_t spill_id = 0;       // engine-assigned unique id for file spilling
  ChunkLayout layout = ChunkLayout::kAoS;
  std::shared_ptr<const void> data;  // payload array (layout above)
};

// Builds a chunk from a typed record vector. The vector is moved to shared
// storage; readers view it zero-copy through ChunkSpan<T>().
template <typename T>
Chunk MakeChunk(uint64_t index, uint64_t model_bytes, std::vector<T> records) {
  static_assert(std::is_trivially_copyable_v<T>, "chunk records must be POD");
  Chunk c;
  c.index = index;
  c.model_bytes = model_bytes;
  c.count = static_cast<uint32_t>(records.size());
  c.payload_bytes = records.size() * sizeof(T);
  auto holder = std::make_shared<std::vector<T>>(std::move(records));
  c.data = std::shared_ptr<const void>(holder, holder->data());
  return c;
}

// Zero-copy typed view of a chunk payload. The caller must know the record
// type from the set kind (enforced by protocol, checked by tests). Only
// valid for AoS payloads — SoA edge chunks are read through EdgeChunkView.
template <typename T>
std::span<const T> ChunkSpan(const Chunk& c) {
  static_assert(std::is_trivially_copyable_v<T>, "chunk records must be POD");
  if (c.count == 0) {
    return {};
  }
  CHAOS_CHECK(c.data != nullptr);
  CHAOS_DCHECK(c.layout == ChunkLayout::kAoS);
  // Arena-backed payloads are 64-byte aligned; vector-backed ones at least
  // max_align_t. Either way the typed view must be properly aligned.
  CHAOS_DCHECK(reinterpret_cast<uintptr_t>(c.data.get()) % alignof(T) == 0);
  return std::span<const T>(static_cast<const T*>(c.data.get()), c.count);
}

}  // namespace chaos

#endif  // CHAOS_STORAGE_CHUNK_H_
