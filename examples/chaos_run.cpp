// chaos_run: command-line driver — run any of the ten algorithms over an
// edge-list file (binary or text) or a generated graph on a configurable
// simulated cluster. The "release binary" a downstream user would reach
// for first.
//
//   chaos_run --algo pagerank --input graph.txt --machines 16
//   chaos_run --algo bfs --generate rmat --scale 18 --machines 32 --hdd
//   chaos_run --algo sssp --generate grid --scale 8 --out distances.txt
//
// Heterogeneity / fault injection (reproduces bench fig21_stragglers):
//   chaos_run --algo pagerank --scale 17 --machines 4 --cores 1
//             --storage-bw-mbps 2000 --partitions-per-machine 16
//             --straggler 0 --straggler-severity 8
//
// Machine-failure recovery (reproduces bench fig_recovery): kill machine 2
// mid-run, recover automatically from the last committed checkpoint —
// on the N-1 survivors with --rescale, on a same-size cluster without:
//   chaos_run --algo pagerank --scale 16 --machines 8
//             --checkpoint-interval 2 --kill-machine 2 --kill-at 0.08
//
// Evolving graphs (reproduces bench fig_evolving): apply seeded mutation
// batches between convergences and re-converge incrementally from the
// affected frontier (--mutate-full restarts every vertex instead):
//   chaos_run --algo bfs --scale 14 --machines 8 --mutate-batches 3
//             --mutate-rate 0.01 --mutate-preset churn
//
// Sweep mode: cross-product over comma-separated knob lists, one
// self-contained simulation per point, run in parallel under --jobs
// (results are bitwise independent of the job count — util/parallel.h):
//   chaos_run --algo pagerank --scale 14 --jobs 8
//             --sweep "machines=1,2,4,8;chunk-kb=128,256"
//
// Serving mode: submit a multi-job trace to the job scheduler
// (core/job_scheduler.h) instead of running one algorithm alone. Every
// job goes through the same flag -> JobSpec path the one-shot CLI uses:
//   chaos_run --trace jobs.txt --policy priority --serve-machines 8
//       where jobs.txt holds one chaos_run flag line per job, e.g.
//         --algo bfs --scale 12 --machines 2 --priority 2 --arrival-ms 40
//         --algo pagerank --scale 14 --machines 4 --arrival-ms 0
//   chaos_run --trace-preset bursty --trace-jobs 12 --algo wcc --scale 12
//             --machines 2 --policy priority --quantum 4
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/runner.h"
#include "core/job_trace.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "util/logging.h"
#include "util/options.h"
#include "util/parallel.h"
#include "util/stats.h"

using namespace chaos;

namespace {

void RegisterFlags(Options& opt) {
  opt.AddString("algo", "pagerank",
                "bfs|wcc|mcst|mis|sssp|pagerank|scc|conductance|spmv|bp");
  opt.AddString("input", "", "edge-list file (binary or text; empty = --generate)");
  opt.AddString("generate", "rmat", "rmat|web|grid|uniform (when no --input)");
  opt.AddInt("scale", 14, "generator scale (2^scale vertices)");
  opt.AddInt("machines", 8, "simulated machines");
  opt.AddInt("partitions-per-machine", 4, "streaming partitions per machine");
  opt.AddInt("mem-mb", 0,
             "enforced per-machine memory budget in MiB (buffer-pool cap; over-budget "
             "buffers spill to the machine's storage device; 0 = auto headroom)");
  opt.AddInt("chunk-kb", 256, "storage chunk size in KiB (the steal granularity)");
  opt.AddBool("hdd", false, "use the HDD profile instead of SSD");
  opt.AddBool("slow-net", false, "use 1GigE instead of 40GigE");
  opt.AddInt("cores", 0, "CPU cores per machine (0 = cost-model default)");
  opt.AddDouble("storage-bw-mbps", 0.0, "storage bandwidth MB/s (0 = profile default)");
  opt.AddDouble("alpha", 1.0, "work-stealing bias (0 disables stealing)");
  opt.AddString("steal-mode", "steal_one",
                "steal policy: steal_one|steal_half|adaptive (adaptive also "
                "turns on backoff + victim-check hints)");
  // The update-plane combining switches default ON here (the release
  // binary wants the cheapest wire/control plane); the library-level
  // ClusterConfig defaults stay off so the pinned benchmark figures
  // reproduce byte-for-byte (see src/core/config.h).
  opt.AddString("wire-combine", "on",
                "on|off: pack outbound update batches columnar with delta-varint "
                "ids before charging the NIC (pure re-encode, same results)");
  opt.AddString("steal-combine", "on",
                "on|off: merge co-domain steal proposals queued at a victim into "
                "one control-message CPU charge");
  opt.AddInt("straggler", -1, "machine to degrade (-1 = healthy cluster)");
  opt.AddDouble("straggler-severity", 4.0, "slowdown factor of the straggler");
  opt.AddString("straggler-target", "cpu", "degraded resource: cpu|storage|nic|machine");
  opt.AddDouble("fault-at-ms", 0.0, "simulated time the degradation begins");
  opt.AddDouble("fault-duration-ms", 0.0, "degradation length (0 = permanent)");
  opt.AddInt("checkpoint-interval", 0, "checkpoint every N supersteps (0 = off)");
  opt.AddInt("kill-machine", -1, "fail-stop this machine mid-run (-1 = none)");
  opt.AddDouble("kill-at", 0.5,
                "simulated failure time in SECONDS (note: --fault-at-ms is in ms)");
  opt.AddBool("rescale", false, "recover on N-1 machines instead of a same-size cluster");
  opt.AddInt("mutate-batches", 0,
             "evolving mode: apply N seeded mutation batches between convergences and "
             "re-converge after each (bfs/sssp/wcc only; 0 = static graph)");
  opt.AddDouble("mutate-rate", 0.03, "edges mutated per batch as a fraction of the graph");
  opt.AddString("mutate-preset", "uniform", "mutation shape: uniform|hotspot|churn");
  opt.AddBool("mutate-full", false,
              "full-recompute baseline: reseed every vertex instead of warm-starting "
              "from the affected frontier");
  opt.AddInt("source", 0, "source vertex (bfs/sssp)");
  opt.AddInt("iterations", 5, "iterations (pagerank/bp)");
  opt.AddInt("seed", 1, "seed");
  opt.AddString("out", "", "write per-vertex results to this file (single run only)");
  opt.AddString("sweep", "",
                "semicolon-separated knob lists, e.g. \"machines=1,2,4;chunk-kb=128,256\":"
                " run the cross product as parallel points");
  opt.AddInt("jobs", 0, "host threads for --sweep / --trace points (0 = all cores)");
  // Per-job scheduling metadata — meaningful under --trace / --trace-preset,
  // inert in a one-shot run.
  opt.AddDouble("arrival-ms", 0.0, "job arrival time in simulated ms (serving mode)");
  opt.AddInt("priority", 0, "job priority (higher runs first under --policy priority)");
  opt.AddBool("no-preempt", false, "mark this job non-preemptible");
  opt.AddString("name", "", "job name in the serving report (default: <algo>-<index>)");
  // Serving mode: many jobs on one scheduled cluster.
  opt.AddString("trace", "",
                "file with one chaos_run flag line per job; serves them through the"
                " job scheduler");
  opt.AddString("trace-preset", "",
                "synthetic arrival trace: uniform|bursty|diurnal (jobs shaped by the"
                " remaining flags, seeds varied per job)");
  opt.AddInt("trace-jobs", 12, "jobs generated by --trace-preset");
  opt.AddDouble("trace-horizon-ms", 1000.0, "arrival horizon for --trace-preset");
  opt.AddDouble("high-fraction", 0.25,
                "--trace-preset probability a job arrives high-priority");
  opt.AddString("policy", "priority", "serving scheduler: fifo|priority");
  opt.AddInt("serve-machines", 8, "machines in the serving cluster");
  opt.AddInt("serve-mem-mb", 0,
             "per-machine memory for admission control in MiB (0 = unlimited)");
  opt.AddInt("quantum", 4, "preemption quantum in supersteps (--policy priority)");
  opt.AddBool("verbose", false, "info-level logging");
}

// Builds the JobSpec a parsed flag set describes: load or generate the
// input, size the cluster, attach fault injection and recovery. This is the
// single flag -> JobSpec path: the one-shot CLI, every --sweep point and
// every --trace line all land here. `serving` rejects per-cluster fault
// flags — a scheduled job cannot carry its own fault schedule.
std::optional<JobSpec> BuildJob(const Options& opt, bool quiet, bool serving) {
  const std::string algo = opt.GetString("algo");
  const AlgorithmInfo& info = AlgorithmByName(algo);
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  // ---- Input.
  InputGraph raw;
  if (!opt.GetString("input").empty()) {
    std::string error;
    auto loaded = LoadEdgeListBinary(opt.GetString("input"), &error);
    if (!loaded.has_value()) {
      loaded = LoadEdgeListText(opt.GetString("input"), &error);
    }
    if (!loaded.has_value()) {
      std::fprintf(stderr, "cannot load %s: %s\n", opt.GetString("input").c_str(),
                   error.c_str());
      return std::nullopt;
    }
    raw = std::move(*loaded);
    if (info.needs_weights && !raw.weighted && !quiet) {
      std::fprintf(stderr, "note: %s expects weights; using weight 1 per edge\n",
                   algo.c_str());
    }
  } else {
    const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
    const std::string kind = opt.GetString("generate");
    if (kind == "rmat") {
      RmatOptions gopt;
      gopt.scale = scale;
      gopt.weighted = info.needs_weights;
      gopt.seed = seed;
      raw = GenerateRmat(gopt);
    } else if (kind == "web") {
      WebGraphOptions gopt;
      gopt.num_pages = 1ull << scale;
      gopt.num_hosts = std::max<uint64_t>(gopt.num_pages >> 8, 4);
      gopt.seed = seed;
      raw = GenerateWebGraph(gopt);
    } else if (kind == "grid") {
      GridGraphOptions gopt;
      gopt.width = 1u << (scale / 2);
      gopt.height = 1u << (scale - scale / 2);
      gopt.seed = seed;
      raw = GenerateGridGraph(gopt);
    } else if (kind == "uniform") {
      raw = GenerateUniformRandom(1ull << scale, 16ull << scale, info.needs_weights, seed);
    } else {
      std::fprintf(stderr, "unknown generator '%s'\n", kind.c_str());
      return std::nullopt;
    }
  }
  auto prepared = std::make_shared<const InputGraph>(PrepareInput(algo, raw));
  if (!quiet) {
    std::printf("%s over %llu vertices / %llu edges (%s input)\n", algo.c_str(),
                static_cast<unsigned long long>(prepared->num_vertices),
                static_cast<unsigned long long>(prepared->num_edges()),
                FormatBytes(prepared->input_wire_bytes()).c_str());
  }

  // ---- Cluster.
  ClusterConfig cfg;
  cfg.machines = static_cast<int>(opt.GetInt("machines"));
  const auto ppm = static_cast<uint64_t>(opt.GetInt("partitions-per-machine"));
  cfg.memory_budget_bytes = std::max<uint64_t>(
      prepared->num_vertices * 48 / (ppm * static_cast<uint64_t>(cfg.machines)) + 1, 4 << 10);
  cfg.chunk_bytes = static_cast<uint64_t>(opt.GetInt("chunk-kb")) << 10;
  if (opt.GetInt("mem-mb") > 0) {
    // Squeeze the enforced buffer-pool budget without touching the
    // partitioning: the record streams stay identical, pressure shows up
    // as spill I/O and stall time (see docs/REPRODUCTION.md, fig_memory).
    cfg.pool_budget_bytes = static_cast<uint64_t>(opt.GetInt("mem-mb")) << 20;
  }
  cfg.storage = opt.GetBool("hdd") ? StorageConfig::Hdd() : StorageConfig::Ssd();
  cfg.net = opt.GetBool("slow-net") ? NetworkConfig::OneGigE() : NetworkConfig::FortyGigE();
  cfg.alpha = opt.GetDouble("alpha");
  if (!ParseStealMode(opt.GetString("steal-mode"), &cfg.steal.mode)) {
    std::fprintf(stderr, "unknown --steal-mode '%s' (steal_one|steal_half|adaptive)\n",
                 opt.GetString("steal-mode").c_str());
    return std::nullopt;
  }
  if (cfg.steal.mode == StealMode::kAdaptive) {
    // The full adaptive runtime: hint-driven escalation plus backoff and
    // per-phase victim-check hints (see src/core/steal_policy.h).
    cfg.steal.backoff = true;
    cfg.steal.victim_check = true;
  }
  const auto parse_switch = [&opt](const char* flag, bool* out) {
    const std::string& v = opt.GetString(flag);
    if (v == "on") {
      *out = true;
    } else if (v == "off") {
      *out = false;
    } else {
      std::fprintf(stderr, "--%s must be on|off (got '%s')\n", flag, v.c_str());
      return false;
    }
    return true;
  };
  if (!parse_switch("wire-combine", &cfg.wire_combine) ||
      !parse_switch("steal-combine", &cfg.steal_combine)) {
    return std::nullopt;
  }
  cfg.checkpoint_interval = static_cast<uint32_t>(opt.GetInt("checkpoint-interval"));
  cfg.seed = seed;
  if (opt.GetInt("cores") > 0) {
    cfg.cost.cores = static_cast<int>(opt.GetInt("cores"));
  }
  if (opt.GetDouble("storage-bw-mbps") > 0.0) {
    cfg.storage.bandwidth_bps = opt.GetDouble("storage-bw-mbps") * 1e6;
  }

  // ---- Fault injection.
  const auto victim = static_cast<MachineId>(opt.GetInt("straggler"));
  const auto kill_machine = static_cast<MachineId>(opt.GetInt("kill-machine"));
  if (serving && (victim >= 0 || kill_machine >= 0)) {
    std::fprintf(stderr,
                 "--straggler/--kill-machine cannot be set on a scheduled job "
                 "(fault injection is per-cluster; run those one-shot)\n");
    return std::nullopt;
  }
  if (victim >= 0) {
    if (victim >= cfg.machines) {
      std::fprintf(stderr, "--straggler must be in [0, %d)\n", cfg.machines);
      return std::nullopt;
    }
    FaultTarget target = FaultTarget::kCpu;
    if (!ParseFaultTarget(opt.GetString("straggler-target"), &target)) {
      std::fprintf(stderr, "unknown --straggler-target '%s'\n",
                   opt.GetString("straggler-target").c_str());
      return std::nullopt;
    }
    const double severity = opt.GetDouble("straggler-severity");
    if (severity < 1.0) {
      std::fprintf(stderr, "--straggler-severity must be >= 1\n");
      return std::nullopt;
    }
    FaultEvent fault;
    fault.machine = victim;
    fault.target = target;
    fault.factor = 1.0 / severity;
    fault.at = static_cast<TimeNs>(opt.GetDouble("fault-at-ms") * kNsPerMs);
    fault.duration = static_cast<TimeNs>(opt.GetDouble("fault-duration-ms") * kNsPerMs);
    cfg.faults.Add(fault);
    if (!quiet) {
      std::printf("injecting: machine %d %s at %.1fx speed (%s)\n", victim,
                  FaultTargetName(target), 1.0 / severity,
                  fault.permanent() ? "permanent" : "transient");
    }
  }

  // ---- Machine failure + automatic recovery.
  RecoveryOptions recovery;
  if (kill_machine >= 0) {
    if (kill_machine >= cfg.machines) {
      std::fprintf(stderr, "--kill-machine must be in [0, %d)\n", cfg.machines);
      return std::nullopt;
    }
    if (opt.GetBool("rescale") && cfg.machines < 2) {
      std::fprintf(stderr, "--rescale needs at least 2 machines (cannot shrink below 1)\n");
      return std::nullopt;
    }
    FaultEvent kill;
    kill.at = static_cast<TimeNs>(opt.GetDouble("kill-at") * static_cast<double>(kNsPerSec));
    kill.machine = kill_machine;
    kill.target = FaultTarget::kMachine;
    kill.kind = FaultKind::kMachineCrash;
    cfg.faults.Add(kill);
    if (opt.GetBool("rescale")) {
      recovery.replacement_machines = cfg.machines - 1;
    }
    if (!quiet) {
      std::printf(
          "injecting: machine %d fails (fail-stop) at %.3fs; recovery on %d machines\n",
          kill_machine, opt.GetDouble("kill-at"),
          recovery.replacement_machines > 0 ? recovery.replacement_machines : cfg.machines);
    }
  }

  // ---- Evolving mode.
  const auto mutate_batches = static_cast<uint32_t>(opt.GetInt("mutate-batches"));
  std::optional<MutatePreset> mutate_preset;
  if (mutate_batches > 0) {
    if (algo != "bfs" && algo != "sssp" && algo != "wcc") {
      std::fprintf(stderr, "--mutate-batches supports bfs/sssp/wcc, not %s\n", algo.c_str());
      return std::nullopt;
    }
    mutate_preset = MutatePresetByName(opt.GetString("mutate-preset"));
    if (!mutate_preset.has_value()) {
      std::fprintf(stderr, "unknown --mutate-preset '%s' (uniform|hotspot|churn)\n",
                   opt.GetString("mutate-preset").c_str());
      return std::nullopt;
    }
    if (!quiet) {
      std::printf("evolving: %u mutation batch(es), rate %.3f, preset %s, %s re-convergence\n",
                  mutate_batches, opt.GetDouble("mutate-rate"),
                  opt.GetString("mutate-preset").c_str(),
                  opt.GetBool("mutate-full") ? "full-recompute" : "incremental");
    }
  }

  AlgoParams params;
  params.source = static_cast<VertexId>(opt.GetInt("source"));
  params.iterations = static_cast<uint32_t>(opt.GetInt("iterations"));
  JobSpec spec = MakeJob(algo, std::move(prepared), cfg, params);
  if (mutate_batches > 0) {
    // Evolving jobs carry the RAW graph: the controller re-prepares it per
    // epoch (the prepared copy above only sized the cluster and narration).
    spec.input = std::make_shared<const InputGraph>(std::move(raw));
    spec.mutations.log.num_batches = mutate_batches;
    spec.mutations.log.rate = opt.GetDouble("mutate-rate");
    spec.mutations.log.preset = *mutate_preset;
    spec.mutations.log.seed = seed;
    spec.mutations.incremental = !opt.GetBool("mutate-full");
  }
  if (kill_machine >= 0) {
    spec.recover = true;
    spec.recovery = recovery;
  }
  spec.name = opt.GetString("name");
  spec.priority = static_cast<int>(opt.GetInt("priority"));
  spec.arrival = static_cast<TimeNs>(opt.GetDouble("arrival-ms") * kNsPerMs);
  spec.preemptible = !opt.GetBool("no-preempt");
  return spec;
}

struct RunOutcome {
  int rc = 1;
  double sim_seconds = 0.0;
  double preprocess_seconds = 0.0;
  uint64_t supersteps = 0;
  uint64_t vertices = 0;
  uint64_t edges = 0;
  bool recovered = false;
};

// One complete simulation driven by a parsed flag set. `quiet` suppresses
// the detailed per-run narration (sweep points print nothing; the summary
// table is produced by the caller after the sweep joins).
RunOutcome RunOnce(const Options& opt, bool quiet) {
  RunOutcome outcome;
  std::optional<JobSpec> spec = BuildJob(opt, quiet, /*serving=*/false);
  if (!spec.has_value()) {
    return outcome;
  }
  outcome.vertices = spec->input->num_vertices;
  outcome.edges = spec->input->num_edges();

  JobResult result = RunJob(*spec);
  const RecoveryReport& recovery_report = result.recovery;
  outcome.sim_seconds = result.metrics.total_seconds();
  outcome.preprocess_seconds = ToSeconds(result.metrics.preprocess_time);
  outcome.supersteps = result.supersteps;
  outcome.recovered = recovery_report.crash_detected;
  outcome.rc = 0;

  // ---- Report.
  if (quiet) {
    return outcome;
  }
  std::printf("\n%s", result.metrics.Summary().c_str());
  if (spec->recover) {
    if (!recovery_report.crash_detected) {
      std::printf("machine failure never fired (run finished at %.3fs, before --kill-at)\n",
                  ToSeconds(result.metrics.total_time));
    } else {
      std::printf(
          "recovery: %s at superstep %llu, lost %llu superstep(s), "
          "time-to-recover %s, end-to-end %s\n",
          recovery_report.recovered_from_checkpoint ? "resumed from checkpoint"
                                                    : "restarted from input",
          static_cast<unsigned long long>(recovery_report.resume_superstep),
          static_cast<unsigned long long>(recovery_report.lost_work_supersteps),
          FormatSeconds(ToSeconds(recovery_report.time_to_recover)).c_str(),
          FormatSeconds(ToSeconds(recovery_report.end_to_end_time)).c_str());
    }
  }
  std::printf("supersteps: %llu\n", static_cast<unsigned long long>(result.supersteps));
  const std::string& algo = spec->algorithm;
  if (algo == "conductance") {
    std::printf("conductance: %.6f\n", result.scalar);
  }
  if (algo == "mcst") {
    std::printf("spanning forest: %llu edges, total weight %.2f\n",
                static_cast<unsigned long long>(result.output_records), result.scalar);
  }
  if (!opt.GetString("out").empty()) {
    std::ofstream out(opt.GetString("out"), std::ios::trunc);
    for (VertexId v = 0; v < spec->input->num_vertices; ++v) {
      out << v << ' ' << result.values[v] << '\n';
    }
    std::printf("wrote %llu values to %s\n",
                static_cast<unsigned long long>(spec->input->num_vertices),
                opt.GetString("out").c_str());
  }
  return outcome;
}

// ---- Serving mode (--trace / --trace-preset).

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') {
      ++end;
    }
    if (end > pos) {
      tokens.push_back(line.substr(pos, end - pos));
    }
    pos = end;
  }
  return tokens;
}

// Re-parses `tokens` on top of a copy of the base flag set, so a trace line
// inherits every flag it does not override — the exact mechanism --sweep
// points use.
std::optional<Options> ParseOverrides(const Options& base, std::vector<std::string> tokens,
                                      std::string* error) {
  Options opt = base;
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& t : tokens) {
    argv.push_back(t.data());
  }
  if (auto err = opt.Parse(static_cast<int>(argv.size()), argv.data())) {
    *error = *err;
    return std::nullopt;
  }
  return opt;
}

// Reads one JobSpec per non-empty, non-comment line of `path`; each line is
// a chaos_run flag list layered over the base flags.
bool LoadTraceFile(const Options& base, const std::string& path,
                   std::vector<JobSpec>* specs) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open --trace file %s\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> tokens = SplitTokens(line);
    if (tokens.empty() || tokens[0][0] == '#') {
      continue;
    }
    std::string error;
    std::optional<Options> job_opt = ParseOverrides(base, std::move(tokens), &error);
    if (!job_opt.has_value()) {
      std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), lineno, error.c_str());
      return false;
    }
    std::optional<JobSpec> spec = BuildJob(*job_opt, /*quiet=*/true, /*serving=*/true);
    if (!spec.has_value()) {
      std::fprintf(stderr, "%s:%d: bad job spec\n", path.c_str(), lineno);
      return false;
    }
    specs->push_back(std::move(*spec));
  }
  return true;
}

// Synthesizes a trace from a preset: arrivals and priorities from
// core/job_trace.h, job shape from the base flags with the per-entry
// derived seed layered on top (still the one flag -> JobSpec path).
bool GeneratePresetTrace(const Options& base, TracePreset preset,
                         std::vector<JobSpec>* specs) {
  TraceOptions topt;
  topt.preset = preset;
  topt.num_jobs = static_cast<int>(base.GetInt("trace-jobs"));
  topt.horizon = static_cast<TimeNs>(base.GetDouble("trace-horizon-ms") * kNsPerMs);
  topt.seed = static_cast<uint64_t>(base.GetInt("seed"));
  topt.high_fraction = base.GetDouble("high-fraction");
  for (const TraceEntry& entry : GenerateTrace(topt)) {
    // The derived seed is folded to 31 bits so it round-trips through the
    // int flag; per-job variety is all it needs to provide.
    std::string error;
    std::optional<Options> job_opt = ParseOverrides(
        base, {"--seed=" + std::to_string(entry.seed & 0x7fffffff)}, &error);
    if (!job_opt.has_value()) {
      std::fprintf(stderr, "--trace-preset: %s\n", error.c_str());
      return false;
    }
    std::optional<JobSpec> spec = BuildJob(*job_opt, /*quiet=*/true, /*serving=*/true);
    if (!spec.has_value()) {
      return false;
    }
    spec->arrival = entry.arrival;
    spec->priority = entry.priority;
    specs->push_back(std::move(*spec));
  }
  return true;
}

int RunTrace(const Options& opt) {
  const std::optional<SchedPolicy> policy = SchedPolicyByName(opt.GetString("policy"));
  if (!policy.has_value()) {
    std::fprintf(stderr, "unknown --policy '%s' (want fifo|priority)\n",
                 opt.GetString("policy").c_str());
    return 1;
  }

  std::vector<JobSpec> specs;
  if (!opt.GetString("trace").empty()) {
    if (!LoadTraceFile(opt, opt.GetString("trace"), &specs)) {
      return 1;
    }
  } else {
    const auto preset = TracePresetByName(opt.GetString("trace-preset"));
    if (!preset.has_value()) {
      std::fprintf(stderr, "unknown --trace-preset '%s' (want uniform|bursty|diurnal)\n",
                   opt.GetString("trace-preset").c_str());
      return 1;
    }
    if (!GeneratePresetTrace(opt, *preset, &specs)) {
      return 1;
    }
  }
  if (specs.empty()) {
    std::fprintf(stderr, "trace holds no jobs\n");
    return 1;
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name.empty()) {
      specs[i].name = specs[i].algorithm + "-" + std::to_string(i);
    }
  }

  ServingConfig serving;
  serving.machines = static_cast<int>(opt.GetInt("serve-machines"));
  serving.machine_memory_bytes = static_cast<uint64_t>(opt.GetInt("serve-mem-mb")) << 20;
  serving.policy = *policy;
  serving.preempt_quantum = static_cast<uint64_t>(opt.GetInt("quantum"));
  serving.jobs = static_cast<int>(opt.GetInt("jobs"));

  std::printf("serving %zu job(s) on %d machines, policy %s, quantum %llu\n", specs.size(),
              serving.machines, SchedPolicyName(serving.policy),
              static_cast<unsigned long long>(serving.preempt_quantum));
  const TraceRunResult run = RunJobTrace(specs, serving);

  std::printf("%-16s %4s %10s %10s %10s %10s %7s %8s %7s\n", "job", "prio", "arrive(s)",
              "start(s)", "done(s)", "latency(s)", "slices", "preempts", "status");
  int rc = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const JobSchedStats& s = run.jobs[i].sched;
    if (!s.admitted) {
      std::printf("%-16s %4d %10.3f %10s %10s %10s %7s %8s %7s\n", specs[i].name.c_str(),
                  specs[i].priority, ToSeconds(specs[i].arrival), "-", "-", "-", "-", "-",
                  "REJECT");
      rc = 1;
      continue;
    }
    std::printf("%-16s %4d %10.3f %10.3f %10.3f %10.3f %7llu %8llu %7s\n",
                specs[i].name.c_str(), specs[i].priority, ToSeconds(s.arrival),
                ToSeconds(s.first_dispatch), ToSeconds(s.completion),
                ToSeconds(s.latency()), static_cast<unsigned long long>(s.slices),
                static_cast<unsigned long long>(s.preemptions),
                s.completed ? "ok" : "FAIL");
    rc = std::max(rc, s.completed ? 0 : 1);
  }
  std::printf(
      "\nmakespan %.3fs, utilization %.2f, %d dispatch(es), %d preemption(s), "
      "%d rejected\n",
      ToSeconds(run.metrics.makespan), run.metrics.utilization, run.metrics.dispatches,
      run.metrics.preemptions, run.metrics.rejected);
  if (opt.GetBool("verbose")) {
    for (const SchedEvent& event : run.events) {
      std::printf("  %s\n", event.ToString().c_str());
    }
  }
  return rc;
}

// ---- Sweep mode.

struct SweepKnob {
  std::string name;
  std::vector<std::string> values;
};

// Parses "machines=1,2,4;chunk-kb=128,256" into knob lists.
bool ParseSweepSpec(const std::string& spec, std::vector<SweepKnob>* knobs) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) {
      semi = spec.size();
    }
    const std::string part = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (part.empty()) {
      continue;
    }
    const size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size()) {
      std::fprintf(stderr, "bad --sweep entry '%s' (want knob=v1,v2,...)\n", part.c_str());
      return false;
    }
    SweepKnob knob;
    knob.name = part.substr(0, eq);
    size_t vpos = eq + 1;
    while (vpos <= part.size()) {
      size_t comma = part.find(',', vpos);
      if (comma == std::string::npos) {
        comma = part.size();
      }
      const std::string value = part.substr(vpos, comma - vpos);
      if (value.empty()) {
        std::fprintf(stderr, "empty value in --sweep entry '%s'\n", part.c_str());
        return false;
      }
      knob.values.push_back(value);
      vpos = comma + 1;
    }
    knobs->push_back(std::move(knob));
  }
  if (knobs->empty()) {
    std::fprintf(stderr, "--sweep given but no knobs parsed\n");
    return false;
  }
  return true;
}

int RunSweep(const Options& base, const std::vector<SweepKnob>& knobs, int jobs) {
  // Cross product, row-major in declaration order: the last knob varies
  // fastest, matching nested for-loops.
  size_t num_points = 1;
  for (const SweepKnob& k : knobs) {
    num_points *= k.values.size();
  }
  struct Point {
    Options opt;          // base flags + this point's overrides
    std::string label;    // "machines=2 chunk-kb=128"
  };
  std::vector<Point> grid;
  grid.reserve(num_points);
  for (size_t p = 0; p < num_points; ++p) {
    size_t rem = p;
    std::vector<std::string> args;
    std::string label;
    for (size_t k = knobs.size(); k-- > 0;) {
      const SweepKnob& knob = knobs[k];
      const std::string& value = knob.values[rem % knob.values.size()];
      rem /= knob.values.size();
      args.push_back("--" + knob.name + "=" + value);
      label = knob.name + "=" + value + (label.empty() ? "" : " ") + label;
    }
    std::string error;
    std::optional<Options> parsed = ParseOverrides(base, std::move(args), &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "--sweep knob rejected: %s\n", error.c_str());
      return 1;
    }
    grid.push_back(Point{std::move(*parsed), std::move(label)});
  }

  SweepExecutor executor(jobs);  // <= 0 = all cores; executor normalizes
  std::printf("sweep: %zu points x {%s}, %d job(s)\n", grid.size(),
              base.GetString("algo").c_str(), executor.jobs());
  std::vector<RunOutcome> outcomes(grid.size());
  executor.ParallelFor(grid.size(),
                       [&](size_t i) { outcomes[i] = RunOnce(grid[i].opt, /*quiet=*/true); });

  std::printf("%-44s %14s %14s %12s %8s\n", "point", "sim-time(s)", "preproc(s)",
              "supersteps", "status");
  int rc = 0;
  for (size_t i = 0; i < grid.size(); ++i) {
    const RunOutcome& o = outcomes[i];
    std::printf("%-44s %14.4f %14.4f %12llu %8s\n", grid[i].label.c_str(), o.sim_seconds,
                o.preprocess_seconds, static_cast<unsigned long long>(o.supersteps),
                o.rc == 0 ? (o.recovered ? "recov" : "ok") : "FAIL");
    rc = std::max(rc, o.rc);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  RegisterFlags(opt);
  if (auto err = opt.Parse(argc - 1, argv + 1); err || opt.help_requested()) {
    if (err) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
    }
    opt.PrintHelp(argv[0]);
    return err ? 1 : 0;
  }
  if (opt.GetBool("verbose")) {
    SetLogLevel(LogLevel::kInfo);
  }
  const bool trace_mode =
      !opt.GetString("trace").empty() || !opt.GetString("trace-preset").empty();
  if (trace_mode && !opt.GetString("sweep").empty()) {
    std::fprintf(stderr, "--sweep and --trace/--trace-preset are mutually exclusive\n");
    return 1;
  }
  if (trace_mode) {
    return RunTrace(opt);
  }
  if (!opt.GetString("sweep").empty()) {
    std::vector<SweepKnob> knobs;
    if (!ParseSweepSpec(opt.GetString("sweep"), &knobs)) {
      return 1;
    }
    return RunSweep(opt, knobs, static_cast<int>(opt.GetInt("jobs")));
  }
  return RunOnce(opt, /*quiet=*/false).rc;
}
