// Paper-scale capacity proof (§9.1 regime): every other figure bench
// materializes its InputGraph in host memory, which caps CI runs around
// RMAT-20. fig_scale instead streams the generator straight into the
// cluster's simulated storage (StreamRmat -> Cluster::RunStreaming), so
// host memory is bounded by one generator batch plus the simulated chunks
// — and a >= 100M-edge run (RMAT-23, the default) fits a CI runner. The
// same binary handles the paper's billion-edge regime locally:
//
//   chaos_bench --bench=fig_scale --scale=26        # 1.07B edges
//
// The run is directed BFS from a sampled hub root (the modal source of
// the first generator batch — structural id 0 may be isolated under the
// RMAT id permutation, a hub's out-component is the giant one). All
// recorded metrics are simulation-derived and deterministic, so the trial
// byte-compares against the pinned BENCH json like any other figure.
//
// --budget-s guards wall time: when nonzero, the bench exits nonzero if
// the host run (generation + ingest + simulation) exceeds the budget.
// Host wall time is printed but never recorded as a metric.
#include <chrono>
#include <unordered_map>

#include "algorithms/basic.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

using namespace chaos;
using namespace chaos::bench;

namespace {

// Modal src of the first generated batch: with a few million samples the
// top RMAT hub wins by a wide margin, and a hub root makes the BFS touch
// the giant out-component instead of (possibly) nothing.
VertexId PickRoot(const RmatOptions& opt, uint64_t sample_edges) {
  std::unordered_map<VertexId, uint32_t> count;
  VertexId best = 0;
  uint32_t best_count = 0;
  StreamRmat(opt, sample_edges, [&](const std::vector<Edge>& edges) {
    for (const Edge& e : edges) {
      const uint32_t c = ++count[e.src];
      if (c > best_count) {
        best_count = c;
        best = e.src;
      }
    }
    return false;  // one batch is enough
  });
  return best;
}

}  // namespace

CHAOS_BENCH_MAIN(fig_scale, "Paper-scale streamed-ingest BFS (>= 100M edges in CI)") {
  Options opt;
  opt.AddInt("scale", 23, "RMAT scale: 2^scale vertices, 16 edges/vertex (23 = 134M edges)");
  opt.AddInt("machines", 4, "machines");
  opt.AddInt("seed", 1, "seed");
  opt.AddInt("batch-edges", 4 << 20, "generator batch size (edges) for streaming ingest");
  opt.AddInt("budget-s", 0, "host wall-clock budget in seconds (0 = unlimited)");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const auto batch_edges = static_cast<uint64_t>(opt.GetInt("batch-edges"));
  const auto budget_s = static_cast<int64_t>(opt.GetInt("budget-s"));

  RmatOptions rmat;
  rmat.scale = scale;
  rmat.seed = seed;
  const uint64_t num_vertices = 1ull << scale;
  const uint64_t num_edges = num_vertices * rmat.edges_per_vertex;

  const auto t0 = std::chrono::steady_clock::now();
  const VertexId root = PickRoot(rmat, std::min<uint64_t>(num_edges, batch_edges));

  InputGraph shape;  // wire-format facts only; the edges stay in the stream
  shape.num_vertices = num_vertices;
  shape.weighted = rmat.weighted;
  ClusterConfig cfg = BenchClusterConfigSized(
      num_vertices, num_edges * shape.edge_wire_bytes(), machines, seed);

  Cluster<BfsProgram> cluster(cfg, BfsProgram(root));
  uint64_t streamed = 0;
  RunResult<BfsProgram> result = cluster.RunStreaming(
      num_vertices, rmat.weighted,
      [&](const Cluster<BfsProgram>::BatchSink& sink) {
        StreamRmat(rmat, batch_edges, [&](const std::vector<Edge>& edges) {
          streamed += edges.size();
          sink(edges);
          return true;
        });
      });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  uint64_t reached = 0;
  for (const double depth : result.values) {
    if (depth >= 0.0) {
      ++reached;
    }
  }

  PrintHeader({"edges", "machines", "root", "reached", "supersteps", "sim", "storage",
               "network", "wall"});
  PrintCell(std::to_string(streamed));
  PrintCell(std::to_string(machines));
  PrintCell(std::to_string(root));
  PrintCell(std::to_string(reached));
  PrintCell(std::to_string(result.supersteps));
  PrintCell(FormatSeconds(result.metrics.total_seconds()));
  PrintCell(FormatBytes(result.metrics.StorageBytesMoved()));
  PrintCell(FormatBytes(result.metrics.network_bytes));
  PrintCell(Fixed(wall_s, 1) + "s");
  EndRow();

  RecordMetric("fig_scale.bfs.edges", static_cast<double>(streamed));
  RecordMetric("fig_scale.bfs.root", static_cast<double>(root));
  RecordMetric("fig_scale.bfs.reached", static_cast<double>(reached));
  RecordMetric("fig_scale.bfs.supersteps", static_cast<double>(result.supersteps));
  RecordMetric("fig_scale.bfs.total_seconds", result.metrics.total_seconds());
  RecordMetric("fig_scale.bfs.preprocess_seconds",
               ToSeconds(result.metrics.preprocess_time));
  RecordMetric("fig_scale.bfs.storage_bytes",
               static_cast<double>(result.metrics.StorageBytesMoved()));
  RecordMetric("fig_scale.bfs.network_bytes",
               static_cast<double>(result.metrics.network_bytes));
  RecordMetric("fig_scale.bfs.peak_memory_bytes",
               static_cast<double>(result.metrics.PeakMemoryBytes()));

  bool ok = true;
  if (result.crashed) {
    std::printf("FAIL: run crashed\n");
    ok = false;
  }
  if (streamed != num_edges) {
    std::printf("FAIL: streamed %llu edges, expected %llu\n",
                static_cast<unsigned long long>(streamed),
                static_cast<unsigned long long>(num_edges));
    ok = false;
  }
  // A hub root must reach a macroscopic out-component; anything tiny means
  // the root sampling or the streamed ingest is broken.
  if (reached < num_vertices / 100) {
    std::printf("FAIL: BFS reached only %llu of %llu vertices\n",
                static_cast<unsigned long long>(reached),
                static_cast<unsigned long long>(num_vertices));
    ok = false;
  }
  if (budget_s > 0 && wall_s > static_cast<double>(budget_s)) {
    std::printf("FAIL: wall time %.1fs exceeded budget %llds\n", wall_s,
                static_cast<long long>(budget_s));
    ok = false;
  }
  return ok ? 0 : 1;
}
