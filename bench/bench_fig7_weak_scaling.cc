// Figure 7: weak scaling — RMAT scale grows with the machine count
// (base scale at m=1 up to base+5 at m=32), runtime normalized to the
// 1-machine runtime. Paper: mean 1.61x at 32x the problem size
// (best Cond 0.97x, worst MCST 2.29x).
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig7, "Figure 7: weak scaling, RMAT scale grows with machine count") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1 (paper: 27)");
  opt.AddInt("seed", 1, "seed");
  opt.AddString("algos", "", "comma list (default: all ten)");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));

  std::vector<std::string> algos;
  if (opt.GetString("algos").empty()) {
    algos = AllAlgorithmNames();
  } else {
    std::string s = opt.GetString("algos");
    size_t pos = 0;
    while (pos != std::string::npos) {
      const size_t comma = s.find(',', pos);
      algos.push_back(s.substr(pos, comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  // Point list: (algorithm x machine count); each point generates its own
  // scaled graph, so points share nothing at all.
  Sweep<double> sweep;
  for (const auto& name : algos) {
    int step = 0;
    for (const int m : MachineSweep()) {
      const uint32_t scale = base + static_cast<uint32_t>(step);
      sweep.Add([name, scale, m, seed] {
        InputGraph prepared =
            PrepareInput(name, BenchRmat(scale, AlgorithmByName(name).needs_weights, seed));
        return RunJob(MakeJob(name, prepared, BenchClusterConfig(prepared, m, seed)))
            .metrics.total_seconds();
      });
      ++step;
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 7: weak scaling RMAT-%u..%u, runtime normalized to m=1 ==\n", base,
              base + 5);
  PrintHeader({"algorithm", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  RunningStat at32;
  size_t idx = 0;
  for (const auto& name : algos) {
    PrintCell(name);
    double base_seconds = 0.0;
    for (const int m : MachineSweep()) {
      const double s = seconds[idx++];
      if (m == 1) {
        base_seconds = s;
      }
      const double normalized = base_seconds > 0 ? s / base_seconds : 0.0;
      PrintCell(normalized);
      RecordMetric("fig7." + name + ".m" + std::to_string(m) + ".sim_s", s);
      if (m == 32) {
        at32.Add(normalized);
      }
    }
    EndRow();
  }
  RecordMetric("fig7.mean_normalized_at_32", at32.mean());
  std::printf("\nmean normalized runtime at m=32: %.2fx (paper: 1.61x, range 0.97x-2.29x)\n",
              at32.mean());
  return 0;
}
