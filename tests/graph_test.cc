// Tests for graph types, generators, and the reference algorithm library.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "graph/generators.h"
#include "graph/ref/reference.h"
#include "graph/types.h"

namespace chaos {
namespace {

// ------------------------------------------------------------------ types

TEST(GraphTypesTest, WireFormatSizes) {
  InputGraph small;
  small.num_vertices = 1000;
  EXPECT_TRUE(small.compact());
  EXPECT_EQ(small.edge_wire_bytes(), 8u);
  small.weighted = true;
  EXPECT_EQ(small.edge_wire_bytes(), 12u);
  EXPECT_EQ(small.vertex_id_wire_bytes(), 4u);

  InputGraph big;
  big.num_vertices = 1ull << 33;
  EXPECT_FALSE(big.compact());
  EXPECT_EQ(big.edge_wire_bytes(), 16u);
  big.weighted = true;
  EXPECT_EQ(big.edge_wire_bytes(), 24u);
  EXPECT_EQ(big.vertex_id_wire_bytes(), 8u);
}

TEST(GraphTypesTest, MakeUndirectedAddsReverses) {
  InputGraph g;
  g.num_vertices = 3;
  g.edges.push_back(Edge{0, 1, 2.5f, kEdgeForward});
  InputGraph u = MakeUndirected(g);
  ASSERT_EQ(u.edges.size(), 2u);
  EXPECT_EQ(u.edges[1].src, 1u);
  EXPECT_EQ(u.edges[1].dst, 0u);
  EXPECT_FLOAT_EQ(u.edges[1].weight, 2.5f);
  EXPECT_EQ(u.edges[1].flags, kEdgeForward);
}

TEST(GraphTypesTest, MakeBidirectedFlagsReverses) {
  InputGraph g;
  g.num_vertices = 3;
  g.edges.push_back(Edge{0, 1, 1.0f, kEdgeForward});
  InputGraph b = MakeBidirected(g);
  ASSERT_EQ(b.edges.size(), 2u);
  EXPECT_EQ(b.edges[0].flags, kEdgeForward);
  EXPECT_EQ(b.edges[1].flags, kEdgeReverse);
  // Degrees only count forward records.
  auto deg = OutDegrees(b);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 0u);
}

TEST(GraphTypesTest, ValidateCatchesOutOfRange) {
  InputGraph g;
  g.num_vertices = 2;
  g.edges.push_back(Edge{0, 5, 1.0f, kEdgeForward});
  std::string error;
  EXPECT_FALSE(ValidateGraph(g, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

// -------------------------------------------------------------- generators

TEST(RmatTest, SizesMatchScale) {
  RmatOptions opt;
  opt.scale = 10;
  opt.seed = 3;
  InputGraph g = GenerateRmat(opt);
  EXPECT_EQ(g.num_vertices, 1024u);
  EXPECT_EQ(g.num_edges(), 1024u * 16u);
  std::string error;
  EXPECT_TRUE(ValidateGraph(g, &error)) << error;
}

TEST(RmatTest, DeterministicBySeed) {
  RmatOptions opt;
  opt.scale = 8;
  opt.seed = 11;
  InputGraph a = GenerateRmat(opt);
  InputGraph b = GenerateRmat(opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].src, b.edges[i].src);
    EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
  }
  opt.seed = 12;
  InputGraph c = GenerateRmat(opt);
  size_t diff = 0;
  for (size_t i = 0; i < a.edges.size(); ++i) {
    diff += a.edges[i].src != c.edges[i].src || a.edges[i].dst != c.edges[i].dst;
  }
  EXPECT_GT(diff, a.edges.size() / 2);
}

TEST(RmatTest, DegreeDistributionIsSkewed) {
  RmatOptions opt;
  opt.scale = 12;
  opt.seed = 5;
  InputGraph g = GenerateRmat(opt);
  auto deg = OutDegrees(g);
  const auto max_deg = *std::max_element(deg.begin(), deg.end());
  const double mean = static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices);
  // Power-law-ish: the hottest vertex is far above the mean.
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * mean);
}

TEST(RmatTest, UnpermutedSkewConcentratesAtLowIds) {
  RmatOptions opt;
  opt.scale = 10;
  opt.permute_ids = false;
  InputGraph g = GenerateRmat(opt);
  auto deg = OutDegrees(g);
  // With a=0.57 the low-id quadrant dominates: vertex 0 should be heavy.
  uint64_t low = 0, high = 0;
  for (VertexId v = 0; v < g.num_vertices / 2; ++v) {
    low += deg[v];
  }
  for (VertexId v = g.num_vertices / 2; v < g.num_vertices; ++v) {
    high += deg[v];
  }
  EXPECT_GT(low, 2 * high);
}

TEST(RmatTest, WeightsPositiveWhenWeighted) {
  RmatOptions opt;
  opt.scale = 8;
  opt.weighted = true;
  InputGraph g = GenerateRmat(opt);
  for (const Edge& e : g.edges) {
    EXPECT_GT(e.weight, 0.0f);
    EXPECT_LE(e.weight, 100.0f);
  }
}

TEST(WebGraphTest, BasicShape) {
  WebGraphOptions opt;
  opt.num_pages = 4096;
  opt.num_hosts = 64;
  opt.mean_out_degree = 10.0;
  opt.seed = 9;
  InputGraph g = GenerateWebGraph(opt);
  EXPECT_EQ(g.num_vertices, 4096u);
  EXPECT_EQ(g.num_edges(), 40960u);
  std::string error;
  EXPECT_TRUE(ValidateGraph(g, &error)) << error;
  // Power-law in-degree: some page much hotter than the mean.
  std::vector<uint32_t> indeg(g.num_vertices, 0);
  for (const Edge& e : g.edges) {
    indeg[e.dst]++;
  }
  EXPECT_GT(*std::max_element(indeg.begin(), indeg.end()), 100u);
}

TEST(GridGraphTest, StructureAndDiameter) {
  GridGraphOptions opt;
  opt.width = 16;
  opt.height = 16;
  opt.seed = 3;
  InputGraph g = GenerateGridGraph(opt);
  EXPECT_EQ(g.num_vertices, 256u);
  // 2 * (w-1) * h + 2 * w * (h-1) directed edges.
  EXPECT_EQ(g.num_edges(), 2u * 15 * 16 + 2u * 16 * 15);
  auto depth = ref::BfsDepths(g, 0);
  // Manhattan diameter from corner 0 is (w-1)+(h-1) = 30.
  EXPECT_EQ(*std::max_element(depth.begin(), depth.end()), 30);
}

TEST(UniformRandomTest, Sizes) {
  InputGraph g = GenerateUniformRandom(100, 500, true, 7);
  EXPECT_EQ(g.num_vertices, 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  std::string error;
  EXPECT_TRUE(ValidateGraph(g, &error)) << error;
}

// -------------------------------------------------------------- references

InputGraph Path4() {
  // 0 -> 1 -> 2 -> 3 (directed path)
  InputGraph g;
  g.num_vertices = 4;
  for (VertexId v = 0; v + 1 < 4; ++v) {
    g.edges.push_back(Edge{v, v + 1, 1.0f, kEdgeForward});
  }
  return g;
}

TEST(RefBfsTest, PathDepths) {
  auto depth = ref::BfsDepths(Path4(), 0);
  EXPECT_EQ(depth, (std::vector<int64_t>{0, 1, 2, 3}));
  auto from2 = ref::BfsDepths(Path4(), 2);
  EXPECT_EQ(from2[0], ref::kUnreachable);
  EXPECT_EQ(from2[3], 1);
}

TEST(RefComponentsTest, TwoComponents) {
  InputGraph g;
  g.num_vertices = 5;
  g.edges.push_back(Edge{0, 1, 1.0f, kEdgeForward});
  g.edges.push_back(Edge{3, 4, 1.0f, kEdgeForward});
  auto labels = ref::ComponentLabels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[2], 2u);   // isolated
  EXPECT_EQ(labels[0], 0u);   // min id in component
  EXPECT_EQ(labels[3], 3u);
}

TEST(RefDijkstraTest, WeightedPath) {
  InputGraph g;
  g.num_vertices = 3;
  g.edges.push_back(Edge{0, 1, 5.0f, kEdgeForward});
  g.edges.push_back(Edge{1, 2, 2.0f, kEdgeForward});
  g.edges.push_back(Edge{0, 2, 9.0f, kEdgeForward});
  auto dist = ref::DijkstraDistances(g, 0);
  EXPECT_DOUBLE_EQ(dist[1], 5.0);
  EXPECT_DOUBLE_EQ(dist[2], 7.0);  // via vertex 1
}

TEST(RefPageRankTest, SymmetricPairConverges) {
  // Two vertices pointing at each other: ranks stay 1.0 under the rule
  // rank = 0.15 + 0.85 * (rank/1).
  InputGraph g;
  g.num_vertices = 2;
  g.edges.push_back(Edge{0, 1, 1.0f, kEdgeForward});
  g.edges.push_back(Edge{1, 0, 1.0f, kEdgeForward});
  auto rank = ref::PageRank(g, 10);
  EXPECT_NEAR(rank[0], 1.0, 1e-9);
  EXPECT_NEAR(rank[1], 1.0, 1e-9);
}

TEST(RefPageRankTest, SinkAndSource) {
  InputGraph g;
  g.num_vertices = 2;
  g.edges.push_back(Edge{0, 1, 1.0f, kEdgeForward});
  auto rank = ref::PageRank(g, 1);
  EXPECT_NEAR(rank[0], 0.15, 1e-12);          // no in-edges
  EXPECT_NEAR(rank[1], 0.15 + 0.85, 1e-12);   // receives 1.0/1
}

TEST(RefMsfTest, TriangleChoosesTwoLightest) {
  InputGraph g;
  g.num_vertices = 3;
  g.edges.push_back(Edge{0, 1, 1.0f, kEdgeForward});
  g.edges.push_back(Edge{1, 2, 2.0f, kEdgeForward});
  g.edges.push_back(Edge{0, 2, 3.0f, kEdgeForward});
  auto msf = ref::KruskalMsf(g);
  EXPECT_EQ(msf.num_edges, 2u);
  EXPECT_DOUBLE_EQ(msf.total_weight, 3.0);
}

TEST(RefMsfTest, ForestAcrossComponents) {
  InputGraph g;
  g.num_vertices = 6;
  g.edges.push_back(Edge{0, 1, 1.0f, kEdgeForward});
  g.edges.push_back(Edge{1, 2, 1.5f, kEdgeForward});
  g.edges.push_back(Edge{3, 4, 2.0f, kEdgeForward});
  auto msf = ref::KruskalMsf(g);
  EXPECT_EQ(msf.num_edges, 3u);  // vertex 5 isolated
  EXPECT_DOUBLE_EQ(msf.total_weight, 4.5);
}

TEST(RefSccTest, CycleAndTail) {
  // 0 -> 1 -> 2 -> 0 cycle, 2 -> 3 tail.
  InputGraph g;
  g.num_vertices = 4;
  g.edges.push_back(Edge{0, 1, 1.0f, kEdgeForward});
  g.edges.push_back(Edge{1, 2, 1.0f, kEdgeForward});
  g.edges.push_back(Edge{2, 0, 1.0f, kEdgeForward});
  g.edges.push_back(Edge{2, 3, 1.0f, kEdgeForward});
  auto comp = ref::StronglyConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(RefSccTest, DagIsAllSingletons) {
  auto comp = ref::StronglyConnectedComponents(Path4());
  std::set<uint32_t> ids(comp.begin(), comp.end());
  EXPECT_EQ(ids.size(), 4u);
}

TEST(RefSamePartitionTest, DetectsEquivalenceAndMismatch) {
  std::vector<uint32_t> a{0, 0, 1, 2};
  std::vector<uint32_t> b{5, 5, 9, 7};
  std::vector<uint32_t> c{5, 5, 9, 9};
  EXPECT_TRUE(ref::SamePartition(a, b));
  EXPECT_FALSE(ref::SamePartition(a, c));
  EXPECT_FALSE(ref::SamePartition(a, std::vector<uint32_t>{0, 0, 1}));
}

TEST(RefMisTest, ValidatorCatchesViolations) {
  InputGraph g = MakeUndirected(Path4());
  // {0, 2} independent but not maximal (3 has no neighbor in the set? 2-3
  // edge exists, so 3 is covered; 1 covered by 0 and 2; {0,2} IS maximal).
  std::vector<uint8_t> good{1, 0, 1, 0};
  EXPECT_TRUE(ref::IsMaximalIndependentSet(g, good));
  std::vector<uint8_t> not_independent{1, 1, 0, 0};
  EXPECT_FALSE(ref::IsMaximalIndependentSet(g, not_independent));
  std::vector<uint8_t> not_maximal{1, 0, 0, 0};  // 2 and 3 uncovered
  EXPECT_FALSE(ref::IsMaximalIndependentSet(g, not_maximal));
}

TEST(RefConductanceTest, KnownCut) {
  // Undirected path 0-1-2-3 as directed both ways; S = {0, 1}.
  InputGraph g = MakeUndirected(Path4());
  std::vector<uint8_t> member{1, 1, 0, 0};
  // Directed edges: (0,1),(1,0),(1,2),(2,1),(2,3),(3,2). Cut edges: (1,2)
  // and (2,1) -> 2. vol(S) = deg(0)+deg(1) = 1+2 = 3; vol(S̄) = 3.
  EXPECT_DOUBLE_EQ(ref::Conductance(g, member), 2.0 / 3.0);
}

TEST(RefSpmvTest, MatchesManualProduct) {
  InputGraph g;
  g.num_vertices = 3;
  g.weighted = true;
  g.edges.push_back(Edge{0, 1, 2.0f, kEdgeForward});
  g.edges.push_back(Edge{1, 2, 3.0f, kEdgeForward});
  g.edges.push_back(Edge{0, 2, 4.0f, kEdgeForward});
  std::vector<double> x{1.0, 10.0, 100.0};
  auto y = ref::SpMV(g, x);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 34.0);
}

TEST(RefBpTest, SingleEdgeOneIteration) {
  InputGraph g;
  g.num_vertices = 2;
  g.edges.push_back(Edge{0, 1, 1.0f, kEdgeForward});
  std::vector<double> priors{2.0, -1.0};
  auto belief = ref::BeliefPropagation(g, priors, 1, 0.5);
  EXPECT_DOUBLE_EQ(belief[0], 2.0);
  EXPECT_NEAR(belief[1], -1.0 + 0.5 * std::tanh(1.0), 1e-12);
}

// Property: on random graphs, BFS depth difference across any edge is <= 1
// within the reached set (triangle property of BFS layers).
TEST(RefBfsTest, PropertyLayerConsistency) {
  InputGraph g = MakeUndirected(GenerateUniformRandom(200, 600, false, 21));
  auto depth = ref::BfsDepths(g, 0);
  for (const Edge& e : g.edges) {
    if (depth[e.src] != ref::kUnreachable) {
      ASSERT_NE(depth[e.dst], ref::kUnreachable);
      EXPECT_LE(std::abs(depth[e.src] - depth[e.dst]), 1);
    }
  }
}

// Property: Kruskal weight is invariant under edge order shuffling.
TEST(RefMsfTest, PropertyOrderInvariance) {
  InputGraph g = GenerateUniformRandom(128, 512, true, 33);
  auto base = ref::KruskalMsf(g);
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    rng.Shuffle(g.edges);
    auto shuffled = ref::KruskalMsf(g);
    EXPECT_EQ(shuffled.num_edges, base.num_edges);
    EXPECT_NEAR(shuffled.total_weight, base.total_weight, 1e-9);
  }
}

// Property: SCC of an undirected(ized) graph equals its connected components.
TEST(RefSccTest, PropertyUndirectedSccEqualsWcc) {
  InputGraph g = MakeUndirected(GenerateUniformRandom(150, 200, false, 44));
  auto scc = ref::StronglyConnectedComponents(g);
  auto wcc = ref::ComponentLabels(g);
  std::vector<uint32_t> wcc32(wcc.size());
  for (size_t i = 0; i < wcc.size(); ++i) {
    wcc32[i] = static_cast<uint32_t>(wcc[i]);
  }
  EXPECT_TRUE(ref::SamePartition(scc, wcc32));
}

// Property: Dijkstra distances satisfy the relaxation inequality on every
// edge: dist[dst] <= dist[src] + w.
TEST(RefDijkstraTest, PropertyRelaxed) {
  InputGraph g = GenerateUniformRandom(300, 1500, true, 55);
  auto dist = ref::DijkstraDistances(g, 0);
  for (const Edge& e : g.edges) {
    if (std::isfinite(dist[e.src])) {
      EXPECT_LE(dist[e.dst], dist[e.src] + static_cast<double>(e.weight) + 1e-9);
    }
  }
}

// StreamRmat must produce the exact edge sequence GenerateRmat does (same
// RNG consumption), independent of batch size — including a batch size
// that does not divide the edge count, and weighted edges (whose weights
// interleave extra RNG draws with the coordinate bits).
TEST(StreamRmatTest, MatchesMaterializedGenerator) {
  for (const bool weighted : {false, true}) {
    RmatOptions opt;
    opt.scale = 10;
    opt.weighted = weighted;
    opt.seed = 99;
    const InputGraph golden = GenerateRmat(opt);
    for (const uint64_t batch : {1000ull, 4096ull, 1ull << 20}) {
      std::vector<Edge> streamed;
      StreamRmat(opt, batch, [&](const std::vector<Edge>& edges) {
        streamed.insert(streamed.end(), edges.begin(), edges.end());
        return true;
      });
      ASSERT_EQ(streamed.size(), golden.edges.size());
      for (size_t i = 0; i < streamed.size(); ++i) {
        ASSERT_EQ(streamed[i].src, golden.edges[i].src) << "weighted=" << weighted;
        ASSERT_EQ(streamed[i].dst, golden.edges[i].dst);
        ASSERT_EQ(streamed[i].weight, golden.edges[i].weight);
        ASSERT_EQ(streamed[i].flags, golden.edges[i].flags);
      }
    }
  }
}

// A sink returning false stops generation after the current batch — the
// prefix delivered matches the materialized sequence (bench_fig_scale uses
// this to sample a root without paying for the full stream).
TEST(StreamRmatTest, SinkCanStopEarly) {
  RmatOptions opt;
  opt.scale = 10;
  opt.seed = 99;
  const InputGraph golden = GenerateRmat(opt);
  constexpr uint64_t kBatch = 1500;
  std::vector<Edge> streamed;
  size_t calls = 0;
  StreamRmat(opt, kBatch, [&](const std::vector<Edge>& edges) {
    ++calls;
    streamed.insert(streamed.end(), edges.begin(), edges.end());
    return false;
  });
  EXPECT_EQ(calls, 1u);
  ASSERT_EQ(streamed.size(), kBatch);
  for (size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_EQ(streamed[i].src, golden.edges[i].src);
    ASSERT_EQ(streamed[i].dst, golden.edges[i].dst);
  }
}

}  // namespace
}  // namespace chaos
