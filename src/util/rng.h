// Deterministic pseudo-random number generation.
//
// Chaos relies on randomization for chunk placement, engine selection and
// steal-sweep ordering; reproducibility of a whole simulated run therefore
// requires seeded, stable generators. We use splitmix64 for seeding and
// xoshiro256** for the stream — both stable across platforms, unlike
// std::mt19937 + std::uniform_int_distribution.
#ifndef CHAOS_UTIL_RNG_H_
#define CHAOS_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/common.h"

namespace chaos {

// One step of splitmix64; also a good 64-bit mixing/hash function.
constexpr uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless 64-bit hash of a value, suitable for placement decisions.
constexpr uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

// Combines two 64-bit values into one hash (order-sensitive).
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Two-input mix: the seed-derivation rule of the parallel sweep subsystem
// (util/parallel.h), spelled Mix64(base_seed, point_index). DELIBERATELY
// the same operation as HashCombine — one mixing function, two names for
// two roles (hashing vs. seed derivation); keep them aliased.
constexpr uint64_t Mix64(uint64_t a, uint64_t b) { return HashCombine(a, b); }

// xoshiro256** by Blackman & Vigna. Deterministic and fast.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction
  // with rejection for exact uniformity.
  uint64_t Below(uint64_t bound) {
    CHAOS_DCHECK(bound > 0);
    // Rejection sampling on the top bits.
    const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    while (true) {
      const uint64_t r = Next();
      const __uint128_t m = static_cast<__uint128_t>(r) * bound;
      const auto low = static_cast<uint64_t>(m);
      if (low >= threshold) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    CHAOS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Returns a shuffled vector {0, 1, ..., n-1}.
  std::vector<uint32_t> Permutation(uint32_t n) {
    std::vector<uint32_t> p(n);
    std::iota(p.begin(), p.end(), 0u);
    Shuffle(p);
    return p;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

}  // namespace chaos

#endif  // CHAOS_UTIL_RNG_H_
