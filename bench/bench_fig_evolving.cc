// Evolving graphs (PR 8): incremental re-convergence vs full recompute.
//
// Method: for each monotone algorithm (bfs/sssp/wcc) and each mutation
// rate, run the SAME seeded mutation schedule twice through the evolving
// driver — once warm-starting from the converged state (incremental.h
// seeders), once reseeding every vertex from InitVertex (full-recompute
// baseline; identical apply cost, so the comparison isolates
// re-convergence work) — plus one from-scratch run on the final mutated
// graph as the golden model.
//
// Exit is nonzero unless, for every algorithm:
//  * both variants apply every scheduled epoch and land on the golden
//    fixed point of the fully mutated graph (bitwise for bfs/wcc; SSSP's
//    float sums get the differential suite's 1e-3 bound), and
//  * at the LOWEST mutation rate the incremental variant strictly beats
//    the full-recompute baseline in simulated total time — the paper-side
//    claim that reacting to a small delta is cheaper than restarting.
#include <cmath>

#include "bench/bench_common.h"
#include "graph/mutation_log.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig_evolving, "Evolving graphs: incremental recompute vs full restart") {
  Options opt;
  opt.AddInt("scale", 10, "RMAT scale (2^scale vertices)");
  opt.AddInt("machines", 4, "machines");
  opt.AddInt("seed", 1, "seed");
  opt.AddInt("batches", 3, "mutation epochs per run");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const auto batches = static_cast<uint32_t>(opt.GetInt("batches"));
  const std::vector<std::string> algos = {"bfs", "sssp", "wcc"};
  const std::vector<double> rates = {0.005, 0.02, 0.08};

  auto log_options = [&](double rate) {
    MutationLogOptions mopt;
    mopt.num_batches = batches;
    mopt.rate = rate;
    mopt.preset = MutatePreset::kUniform;
    mopt.seed = DeriveSeed(seed, 0xe701);
    return mopt;
  };

  // Three points per (algo, rate): incremental, full-recompute, golden.
  // All self-contained closures so --jobs parallelism cannot perturb them.
  Sweep<AlgoResult> sweep;
  for (const std::string& name : algos) {
    for (const double rate : rates) {
      const bool weighted = AlgorithmByName(name).needs_weights;
      for (const int variant : {0, 1, 2}) {
        sweep.Add([name, rate, weighted, scale, machines, seed, batches, log_options,
                   variant] {
          const InputGraph raw = BenchRmat(scale, weighted, seed);
          // Config sized off the prepared graph (what the engines stream).
          const ClusterConfig cfg =
              BenchClusterConfig(PrepareInput(name, raw), machines, seed);
          if (variant == 2) {
            // Golden: from-scratch static run on the fully mutated graph.
            const MutationLog log(raw, log_options(rate));
            const InputGraph mutated = log.GraphAfter(batches);
            return RunJob(MakeJob(name, PrepareInput(name, mutated), cfg));
          }
          JobSpec spec = MakeJob(name, raw, cfg);
          spec.mutations.log = log_options(rate);
          spec.mutations.incremental = variant == 0;
          return RunJob(spec);
        });
      }
    }
  }
  const std::vector<AlgoResult> points = sweep.Run();

  std::printf("== Evolving graphs: RMAT-%u on %d machines, %u mutation epochs ==\n", scale,
              machines, batches);
  PrintHeader({"algorithm", "rate", "inc-time", "full-time", "speedup", "inc-resets",
               "match"});
  bool ok = true;
  size_t idx = 0;
  for (const std::string& name : algos) {
    const bool bitwise = name != "sssp";
    for (size_t r = 0; r < rates.size(); ++r) {
      const AlgoResult& inc = points[idx++];
      const AlgoResult& full = points[idx++];
      const AlgoResult& golden = points[idx++];
      // ---- every scheduled epoch must have applied, in both variants.
      std::string match = bitwise ? "bitwise" : "approx";
      if (inc.metrics.mutation_epochs.size() != batches ||
          full.metrics.mutation_epochs.size() != batches) {
        match = "NO-EPOCHS";
      }
      // ---- both variants land on the golden fixed point.
      for (const AlgoResult* run : {&inc, &full}) {
        if (run->values.size() != golden.values.size()) {
          match = "DIVERGED";
          break;
        }
        for (size_t v = 0; v < golden.values.size(); ++v) {
          const double got = run->values[v];
          const double want = golden.values[v];
          const bool same = bitwise || std::isinf(got) || std::isinf(want)
                                ? (got == want || (std::isinf(got) && std::isinf(want)))
                                : std::abs(got - want) <= 1e-3;
          if (!same) {
            match = "DIVERGED";
            break;
          }
        }
      }
      ok = ok && (match == "bitwise" || match == "approx");
      uint64_t inc_resets = 0;
      for (const MutationEpochRecord& rec : inc.metrics.mutation_epochs) {
        inc_resets += rec.resets;
      }
      const double inc_s = inc.metrics.total_seconds();
      const double full_s = full.metrics.total_seconds();
      const double speedup = full_s / inc_s;
      PrintCell(name);
      PrintCell(Fixed(rates[r], 3));
      PrintCell(FormatSeconds(inc_s));
      PrintCell(FormatSeconds(full_s));
      PrintCell(Fixed(speedup, 2) + "x");
      PrintCell(std::to_string(inc_resets));
      PrintCell(match);
      EndRow();
      // The headline claim, measured: when the delta is small, warm-started
      // re-convergence strictly beats restarting from InitVertex.
      if (r == 0 && !(inc.metrics.total_time < full.metrics.total_time)) {
        std::printf("  !! %s: incremental not faster than full recompute at rate %.3f\n",
                    name.c_str(), rates[r]);
        ok = false;
      }
      const std::string prefix = "fig_evolving." + name + ".rate" + Fixed(rates[r], 3);
      RecordMetric(prefix + ".inc_sim_s", inc_s);
      RecordMetric(prefix + ".full_sim_s", full_s);
      RecordMetric(prefix + ".speedup", speedup);
      RecordMetric(prefix + ".inc_resets", static_cast<double>(inc_resets));
    }
  }
  std::printf("\n%s: incremental tracks the golden fixed point and beats full recompute "
              "on small deltas\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
