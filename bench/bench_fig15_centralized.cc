// Figure 15: randomized chunk placement vs a centralized chunk directory,
// BFS and PR, weak scaling normalized to each system's 1-machine runtime.
// Paper: the centralized entity becomes a bottleneck as machines are added;
// Chaos' runtime grows much more slowly.
#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig15, "Figure 15: randomized chunk placement vs centralized directory") {
  Options opt;
  opt.AddInt("base-scale", 10, "RMAT scale at m=1");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto base = static_cast<uint32_t>(opt.GetInt("base-scale"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const std::vector<std::string> algos = {"bfs", "pagerank"};
  const std::vector<bool> designs = {false, true};  // chaos, centralized

  Sweep<double> sweep;
  for (const std::string& name : algos) {
    for (const bool centralized : designs) {
      int step = 0;
      for (const int m : MachineSweep()) {
        const uint32_t scale = base + static_cast<uint32_t>(step);
        sweep.Add([name, scale, centralized, m, seed] {
          InputGraph prepared = PrepareInput(name, BenchRmat(scale, false, seed));
          ClusterConfig cfg = BenchClusterConfig(prepared, m, seed);
          cfg.placement = centralized ? Placement::kCentralDirectory : Placement::kRandom;
          return RunJob(MakeJob(name, prepared, cfg)).metrics.total_seconds();
        });
        ++step;
      }
    }
  }
  const std::vector<double> seconds = sweep.Run();

  std::printf("== Figure 15: Chaos vs centralized chunk directory (weak scaling) ==\n");
  PrintHeader({"algo/design", "m=1", "m=2", "m=4", "m=8", "m=16", "m=32"});
  size_t idx = 0;
  for (const std::string& name : algos) {
    for (const bool centralized : designs) {
      PrintCell(name + (centralized ? " central" : " chaos"));
      double base_seconds = 0.0;
      for (const int m : MachineSweep()) {
        const double s = seconds[idx++];
        if (m == 1) {
          base_seconds = s;
        }
        PrintCell(base_seconds > 0 ? s / base_seconds : 0.0);
        RecordMetric("fig15." + name + (centralized ? ".central" : ".chaos") + ".m" +
                         std::to_string(m) + ".sim_s",
                     s);
      }
      EndRow();
    }
  }
  std::printf("\npaper: the centralized design's runtime grows increasingly faster with m\n");
  return 0;
}
