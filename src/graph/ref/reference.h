// Single-threaded in-memory reference implementations used to validate the
// out-of-core GAS algorithms (and exposed to library users for verification
// on graphs that fit in memory).
//
// Semantics intentionally match the GAS programs in src/algorithms/:
//  * Edges are directed arcs exactly as given; undirected algorithms expect
//    the caller to pass an edge list that already contains both directions.
//  * PageRank uses the X-Stream/paper rule rank = 0.15 + 0.85 * sum of
//    rank/degree over in-neighbors (Fig. 2), no 1/n normalization.
//  * Belief propagation matches the simplified pairwise rule of the GAS
//    program bit-for-bit (same float evaluation order is not required;
//    comparisons use tolerances).
#ifndef CHAOS_GRAPH_REF_REFERENCE_H_
#define CHAOS_GRAPH_REF_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace chaos::ref {

inline constexpr int64_t kUnreachable = -1;

// BFS depth of every vertex from `source` (kUnreachable if not reached).
std::vector<int64_t> BfsDepths(const InputGraph& g, VertexId source);

// Weakly-connected component label per vertex: the minimum vertex id in the
// component (edges treated as undirected regardless of direction).
std::vector<VertexId> ComponentLabels(const InputGraph& g);

// Dijkstra distances from `source` along directed weighted arcs.
// Unreachable vertices get infinity.
std::vector<double> DijkstraDistances(const InputGraph& g, VertexId source);

// PageRank with the paper's update rule for `iterations` rounds.
std::vector<double> PageRank(const InputGraph& g, int iterations, double damping = 0.85);

struct MsfResult {
  double total_weight = 0.0;
  uint64_t num_edges = 0;
};

// Kruskal minimum spanning forest over the undirected interpretation of the
// edge list (parallel edges allowed; self-loops ignored).
MsfResult KruskalMsf(const InputGraph& g);

// Strongly connected components (Tarjan, iterative). Returns a component
// index per vertex; indices are arbitrary but grouping is canonical.
std::vector<uint32_t> StronglyConnectedComponents(const InputGraph& g);

// Groups-equal comparison for component labelings with arbitrary ids.
bool SamePartition(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b);
bool SamePartition(const std::vector<VertexId>& a, const std::vector<VertexId>& b);

// Validates an independent set: no edge inside the set, and every vertex
// outside the set has at least one neighbor inside (maximality).
bool IsMaximalIndependentSet(const InputGraph& g, const std::vector<uint8_t>& in_set);

// Conductance of the vertex subset S = {v : member[v] != 0}:
// cut(S, S̄) / min(vol(S), vol(S̄)), with vol = sum of out-degrees.
double Conductance(const InputGraph& g, const std::vector<uint8_t>& member);

// One sparse matrix-vector product y = A^T x over the edge list
// (y[dst] += weight * x[src]).
std::vector<double> SpMV(const InputGraph& g, const std::vector<double>& x);

// Simplified loopy belief propagation for binary labels: per iteration,
// belief_v = prior_v + damping * sum over incoming arcs (u,v) of
// tanh(belief_u / 2) * weight. Matches the GAS program.
std::vector<double> BeliefPropagation(const InputGraph& g, const std::vector<double>& priors,
                                      int iterations, double damping = 0.5);

}  // namespace chaos::ref

#endif  // CHAOS_GRAPH_REF_REFERENCE_H_
