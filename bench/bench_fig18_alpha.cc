// Figure 18: work-stealing bias sweep. alpha scales the steal criterion
// V + D/(H+1) < alpha * D/H: 0 = no stealing, 1 = Chaos default, infinity =
// always steal. Runtime normalized to alpha = 1, with the Fig. 17 breakdown
// per configuration. Paper: alpha = 1 is fastest.
//
// Beyond the paper's sweep, two extra rows per algorithm run alpha = 1 under
// the steal_half and adaptive policies (src/core/steal_policy.h), so the
// amount dimension is visible next to the bias dimension on the same grid.
#include <limits>

#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig18, "Figure 18: work-stealing bias (alpha) sweep") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 32)");
  opt.AddInt("machines", 16, "machines (paper: 32)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const double kInf = std::numeric_limits<double>::infinity();
  const std::vector<std::string> algos = {"bfs", "pagerank"};

  // Grid per algorithm: the paper's alpha sweep under steal_one, then the
  // other steal amounts at the default bias.
  struct Cell {
    double alpha;
    StealMode mode;
  };
  std::vector<Cell> cells;
  for (const double alpha : {0.0, 0.8, 1.0, 1.2, kInf}) {
    cells.push_back({alpha, StealMode::kStealOne});
  }
  cells.push_back({1.0, StealMode::kStealHalf});
  cells.push_back({1.0, StealMode::kAdaptive});
  auto cell_tag = [kInf](const Cell& c) -> std::string {
    if (c.mode == StealMode::kStealHalf) {
      return "half";
    }
    if (c.mode == StealMode::kAdaptive) {
      return "adapt";
    }
    return "a=" + (c.alpha == kInf ? std::string("inf") : Fixed(c.alpha, 1));
  };

  // Points: (algorithm x cell). The alpha = 1 steal_one point doubles as each
  // algorithm's normalization baseline (runs are deterministic, so reusing
  // it instead of re-running is exact).
  Sweep<AlgoResult> sweep;
  for (const std::string& name : algos) {
    // Unpermuted RMAT concentrates load in low partitions: stealing matters.
    RmatOptions gopt;
    gopt.scale = scale;
    gopt.permute_ids = false;
    gopt.seed = seed;
    auto prepared = std::make_shared<InputGraph>(PrepareInput(name, GenerateRmat(gopt)));
    for (const Cell& cell : cells) {
      sweep.Add([name, prepared, machines, seed, cell] {
        ClusterConfig cfg = BenchClusterConfig(*prepared, machines, seed);
        cfg.alpha = cell.alpha;
        cfg.steal.mode = cell.mode;
        return RunJob(MakeJob(name, *prepared, cfg));
      });
    }
  }
  const std::vector<AlgoResult> results = sweep.Run();

  std::printf("== Figure 18: stealing bias alpha (RMAT-%u, m=%d), normalized to alpha=1 ==\n",
              scale, machines);
  PrintHeader({"algo/cell", "runtime", "gp,own", "gp,stolen", "copy", "merge-wait",
               "barrier"});
  size_t idx = 0;
  for (const std::string& name : algos) {
    const size_t row_start = idx;
    double at_one = 0.0;
    for (const Cell& cell : cells) {
      if (cell.alpha == 1.0 && cell.mode == StealMode::kStealOne) {
        at_one = results[idx].metrics.total_seconds();
      }
      ++idx;
    }
    size_t col = row_start;
    for (const Cell& cell : cells) {
      const AlgoResult& result = results[col++];
      const double seconds = result.metrics.total_seconds();
      char label[64];
      std::snprintf(label, sizeof(label), "%s %s", name.c_str(), cell_tag(cell).c_str());
      PrintCell(label);
      PrintCell(at_one > 0 ? seconds / at_one : seconds, "%.3f");
      for (const Bucket b : {Bucket::kGpMaster, Bucket::kGpSteal, Bucket::kCopy,
                             Bucket::kMergeWait, Bucket::kBarrier}) {
        PrintCell(100.0 * result.metrics.BucketFraction(b), "%.1f%%");
      }
      EndRow();
      const std::string tag =
          cell.mode == StealMode::kStealOne
              ? "alpha_" + (cell.alpha == kInf ? std::string("inf") : Fixed(cell.alpha, 1))
              : cell_tag(cell);
      RecordMetric("fig18." + name + "." + tag + ".sim_s", seconds);
    }
  }
  std::printf("\nnote: runtimes are normalized to each algorithm's alpha=1 steal_one run\n");
  std::printf("paper: alpha=1 is fastest; alpha=0 shows large barrier time (imbalance)\n");
  return 0;
}
