// Quickstart: run PageRank on a simulated 4-machine Chaos cluster.
//
//   build/examples/quickstart [--scale N] [--machines M]
//
// Demonstrates the core public API: generate (or load) an edge list, size a
// cluster with ClusterConfig, run a GAS program through Cluster<Program>,
// and read results + run metrics.
#include <cstdio>
#include <numeric>

#include "algorithms/basic.h"
#include "core/cluster.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/stats.h"

using namespace chaos;

int main(int argc, char** argv) {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale: 2^scale vertices, 16x edges");
  opt.AddInt("machines", 4, "simulated machines");
  opt.AddInt("iterations", 5, "PageRank iterations");
  if (auto err = opt.Parse(argc - 1, argv + 1); err || opt.help_requested()) {
    if (err) {
      std::fprintf(stderr, "error: %s\n", err->c_str());
    }
    opt.PrintHelp(argv[0]);
    return err ? 1 : 0;
  }

  // 1. An unsorted edge list is all Chaos needs (paper §3: partitioning for
  //    sequentiality is the only pre-processing).
  RmatOptions graph_opt;
  graph_opt.scale = static_cast<uint32_t>(opt.GetInt("scale"));
  graph_opt.seed = 42;
  InputGraph graph = GenerateRmat(graph_opt);
  std::printf("graph: %llu vertices, %llu edges (%s on storage)\n",
              static_cast<unsigned long long>(graph.num_vertices),
              static_cast<unsigned long long>(graph.num_edges()),
              FormatBytes(graph.input_wire_bytes()).c_str());

  // 2. Describe the cluster: machine count, per-machine memory for vertex
  //    state, chunk size, device/network profiles.
  ClusterConfig config;
  config.machines = static_cast<int>(opt.GetInt("machines"));
  config.memory_budget_bytes = graph.num_vertices * 12;  // force several partitions
  config.chunk_bytes = 64 << 10;
  config.storage = StorageConfig::Ssd();
  config.net = NetworkConfig::FortyGigE();

  // 3. Run the GAS program.
  Cluster<PageRankProgram> cluster(
      config, PageRankProgram(static_cast<uint32_t>(opt.GetInt("iterations"))));
  RunResult<PageRankProgram> result = cluster.Run(graph);

  // 4. Results: highest-ranked vertices.
  std::vector<VertexId> order(graph.num_vertices);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](VertexId a, VertexId b) { return result.values[a] > result.values[b]; });
  std::printf("\ntop 10 vertices by PageRank:\n");
  for (int i = 0; i < 10; ++i) {
    std::printf("  #%2d vertex %8llu  rank %.3f\n", i + 1,
                static_cast<unsigned long long>(order[static_cast<size_t>(i)]),
                result.values[order[static_cast<size_t>(i)]]);
  }

  // 5. Metrics: simulated runtime, I/O and the Fig. 17-style breakdown.
  std::printf("\n%s", result.metrics.Summary().c_str());
  std::printf("partitions: %u (%u per machine)\n", cluster.partitioning().num_partitions(),
              cluster.partitioning().partitions_per_machine());
  return 0;
}
