// Figure 18: work-stealing bias sweep. alpha scales the steal criterion
// V + D/(H+1) < alpha * D/H: 0 = no stealing, 1 = Chaos default, infinity =
// always steal. Runtime normalized to alpha = 1, with the Fig. 17 breakdown
// per configuration. Paper: alpha = 1 is fastest.
#include <limits>

#include "bench/bench_common.h"

using namespace chaos;
using namespace chaos::bench;

CHAOS_BENCH_MAIN(fig18, "Figure 18: work-stealing bias (alpha) sweep") {
  Options opt;
  opt.AddInt("scale", 12, "RMAT scale (paper: 32)");
  opt.AddInt("machines", 16, "machines (paper: 32)");
  opt.AddInt("seed", 1, "seed");
  if (!ParseFlags(opt, argc, argv)) {
    return 1;
  }
  const auto scale = static_cast<uint32_t>(opt.GetInt("scale"));
  const int machines = static_cast<int>(opt.GetInt("machines"));
  const auto seed = static_cast<uint64_t>(opt.GetInt("seed"));
  const double kInf = std::numeric_limits<double>::infinity();

  std::printf("== Figure 18: stealing bias alpha (RMAT-%u, m=%d), normalized to alpha=1 ==\n",
              scale, machines);
  PrintHeader({"algo/alpha", "runtime", "gp,own", "gp,stolen", "copy", "merge-wait",
               "barrier"});
  for (const std::string name : {"bfs", "pagerank"}) {
    // Unpermuted RMAT concentrates load in low partitions: stealing matters.
    RmatOptions gopt;
    gopt.scale = scale;
    gopt.permute_ids = false;
    gopt.seed = seed;
    InputGraph prepared = PrepareInput(name, GenerateRmat(gopt));
    // Baseline first so every row normalizes to the alpha = 1 run.
    double at_one = 0.0;
    {
      ClusterConfig cfg = BenchClusterConfig(prepared, machines, seed);
      cfg.alpha = 1.0;
      at_one = RunChaosAlgorithm(name, prepared, cfg).metrics.total_seconds();
    }
    for (const double alpha : {0.0, 0.8, 1.0, 1.2, kInf}) {
      ClusterConfig cfg = BenchClusterConfig(prepared, machines, seed);
      cfg.alpha = alpha;
      auto result = RunChaosAlgorithm(name, prepared, cfg);
      const double seconds = result.metrics.total_seconds();
      char label[64];
      std::snprintf(label, sizeof(label), "%s a=%s", name.c_str(),
                    alpha == kInf ? "inf" : Fixed(alpha, 1).c_str());
      PrintCell(label);
      PrintCell(at_one > 0 ? seconds / at_one : seconds, "%.3f");
      for (const Bucket b : {Bucket::kGpMaster, Bucket::kGpSteal, Bucket::kCopy,
                             Bucket::kMergeWait, Bucket::kBarrier}) {
        PrintCell(100.0 * result.metrics.BucketFraction(b), "%.1f%%");
      }
      EndRow();
    }
  }
  std::printf("\nnote: runtimes are normalized to each algorithm's alpha=1 run\n");
  std::printf("paper: alpha=1 is fastest; alpha=0 shows large barrier time (imbalance)\n");
  return 0;
}
