// Compute-engine to compute-engine protocol: work stealing, accumulator
// pulls, and the coordinator-based barrier with global-state reduction.
#ifndef CHAOS_CORE_PROTOCOL_H_
#define CHAOS_CORE_PROTOCOL_H_

#include <cstdint>

#include "storage/chunk.h"
#include "util/common.h"

namespace chaos {

enum ComputeMsgType : uint32_t {
  kHelpProposalReq = 300,   // body: HelpProposalReq -> kHelpProposalResp
  kHelpProposalResp = 301,  // body: HelpProposalResp
  kAccumPullReq = 302,      // body: AccumPullReq -> kAccumPullResp
  kAccumPullResp = 303,     // body: AccumPullResp
  kBarrierArrive = 304,     // body: BarrierArrive<G> -> kBarrierRelease
  kBarrierRelease = 305,    // body: BarrierRelease<G>
  kControlShutdown = 306,
};

enum class EnginePhase : uint8_t {
  kScatter = 0,
  kGather = 1,
};

struct HelpProposalReq {
  PartitionId partition = 0;
  EnginePhase phase = EnginePhase::kScatter;
  uint64_t superstep = 0;
};

struct HelpProposalResp {
  bool accept = false;
};

struct AccumPullReq {
  PartitionId partition = 0;
  uint64_t superstep = 0;
};

// The stealer's accumulator array for the partition, shipped as a chunk
// (count = partition vertex count, wire = count * sizeof(Accumulator)).
struct AccumPullResp {
  Chunk accums;
  uint64_t updates_gathered = 0;
};

template <typename G>
struct BarrierArrive {
  uint64_t phase_id = 0;  // monotonically increasing per barrier
  G local{};              // per-machine aggregator delta
  uint64_t vertices_changed = 0;
  bool advance = false;   // gather barrier: reduce aggregators and Advance()
  uint64_t superstep = 0;
};

template <typename G>
struct BarrierRelease {
  G global{};  // canonical global state for the next phase
  bool done = false;
  bool crash = false;  // simulated failure: stop without finishing
};

}  // namespace chaos

#endif  // CHAOS_CORE_PROTOCOL_H_
