// Tests for the simulated network: NIC FIFO charging, local bypass, RPC
// correlation, incast penalty, many-to-one serialization, and the columnar
// update wire codec behind config wire_combine.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace chaos {
namespace {

NetworkConfig TestConfig() {
  NetworkConfig c;
  c.nic_bandwidth_bps = 1e9;  // 1 GB/s: 1 byte == 1 ns
  c.one_way_latency = 1000;
  c.local_latency = 10;
  c.model_incast = false;
  return c;
}

TEST(NetworkTest, Presets) {
  EXPECT_DOUBLE_EQ(NetworkConfig::FortyGigE().nic_bandwidth_bps, 5e9);
  EXPECT_DOUBLE_EQ(NetworkConfig::OneGigE().nic_bandwidth_bps, 1.25e8);
  EXPECT_EQ(
      NetworkConfig::FortyGigE().nic_bandwidth_bps / NetworkConfig::OneGigE().nic_bandwidth_bps,
      40.0);
}

TEST(NetworkTest, TxTimeMatchesBandwidth) {
  Simulator sim;
  Network net(&sim, 2, TestConfig());
  EXPECT_EQ(net.TxTime(1000), 1000);  // 1 GB/s -> 1 ns/B
  EXPECT_EQ(net.TxTime(0), 0);
}

TEST(MessageBusTest, RemoteDeliveryTiming) {
  Simulator sim;
  Network net(&sim, 2, TestConfig());
  MessageBus bus(&sim, &net);
  TimeNs delivered_at = -1;
  sim.Spawn([](MessageBus* bus, Simulator* s, TimeNs* out) -> Task<> {
    Message m = co_await bus->Inbox(1, kComputeService).Pop();
    CHAOS_CHECK_EQ(m.type, 7u);
    *out = s->now();
  }(&bus, &sim, &delivered_at));
  sim.Spawn([](MessageBus* bus) -> Task<> {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.service = kComputeService;
    m.type = 7;
    m.wire_bytes = 500;
    co_await bus->Send(std::move(m));
  }(&bus));
  sim.Run();
  // uplink 500ns + latency 1000ns + downlink 500ns = 2000ns.
  EXPECT_EQ(delivered_at, 2000);
  EXPECT_EQ(net.bytes_sent(0), 500u);
  EXPECT_EQ(net.bytes_received(1), 500u);
}

TEST(MessageBusTest, LocalDeliverySkipsNic) {
  Simulator sim;
  Network net(&sim, 2, TestConfig());
  MessageBus bus(&sim, &net);
  TimeNs delivered_at = -1;
  sim.Spawn([](MessageBus* bus, Simulator* s, TimeNs* out) -> Task<> {
    (void)co_await bus->Inbox(0, kComputeService).Pop();
    *out = s->now();
  }(&bus, &sim, &delivered_at));
  sim.Spawn([](MessageBus* bus) -> Task<> {
    Message m;
    m.src = 0;
    m.dst = 0;
    m.service = kComputeService;
    m.wire_bytes = 1 << 20;  // size is irrelevant locally
    co_await bus->Send(std::move(m));
  }(&bus));
  sim.Run();
  EXPECT_EQ(delivered_at, 10);  // local latency only
  EXPECT_EQ(net.bytes_sent(0), 0u);
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(MessageBusTest, SenderBlocksOnlyForUplink) {
  Simulator sim;
  Network net(&sim, 2, TestConfig());
  MessageBus bus(&sim, &net);
  TimeNs sender_resumed = -1;
  sim.Spawn([](MessageBus* bus, Simulator* s, TimeNs* out) -> Task<> {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.service = kComputeService;
    m.wire_bytes = 500;
    co_await bus->Send(std::move(m));
    *out = s->now();
  }(&bus, &sim, &sender_resumed));
  sim.Spawn([](MessageBus* bus) -> Task<> {
    (void)co_await bus->Inbox(1, kComputeService).Pop();
  }(&bus));
  sim.Run();
  EXPECT_EQ(sender_resumed, 500);  // uplink only, not latency+downlink
}

TEST(MessageBusTest, RpcRoundTrip) {
  Simulator sim;
  Network net(&sim, 2, TestConfig());
  MessageBus bus(&sim, &net);
  // Server echoes the request payload + 1.
  sim.Spawn([](MessageBus* bus) -> Task<> {
    Message req = co_await bus->Inbox(1, kStorageService).Pop();
    const int v = std::any_cast<int>(req.body);
    bus->PostReply(req, 42, 100, v + 1);
  }(&bus));
  int got = 0;
  TimeNs finished = -1;
  sim.Spawn([](MessageBus* bus, Simulator* s, int* got, TimeNs* finished) -> Task<> {
    Message req;
    req.src = 0;
    req.dst = 1;
    req.service = kStorageService;
    req.type = 1;
    req.wire_bytes = 100;
    req.body = 41;
    Message resp = co_await bus->Call(std::move(req));
    *got = std::any_cast<int>(resp.body);
    CHAOS_CHECK(resp.is_response);
    CHAOS_CHECK_EQ(resp.type, 42u);
    *got = std::any_cast<int>(resp.body);
    *finished = s->now();
  }(&bus, &sim, &got, &finished));
  sim.Run();
  EXPECT_EQ(got, 42);
  // Request: 100 up + 1000 + 100 down = 1200. Reply likewise: 2400 total.
  EXPECT_EQ(finished, 2400);
}

TEST(MessageBusTest, ManyConcurrentRpcsAllResolve) {
  Simulator sim;
  Network net(&sim, 4, TestConfig());
  MessageBus bus(&sim, &net);
  // Echo servers on machines 1..3.
  for (MachineId m = 1; m < 4; ++m) {
    sim.Spawn([](MessageBus* bus, MachineId me) -> Task<> {
      for (int i = 0; i < 50; ++i) {
        Message req = co_await bus->Inbox(me, kStorageService).Pop();
        bus->PostReply(req, req.type + 1000, 64, req.body);
      }
    }(&bus, m));
  }
  int completed = 0;
  for (int i = 0; i < 150; ++i) {
    const MachineId dst = static_cast<MachineId>(1 + i % 3);  // exactly 50 each
    sim.Spawn([](MessageBus* bus, MachineId dst, int tag, int* completed) -> Task<> {
      Message req;
      req.src = 0;
      req.dst = dst;
      req.service = kStorageService;
      req.type = static_cast<uint32_t>(tag);
      req.wire_bytes = 64;
      req.body = tag;
      Message resp = co_await bus->Call(std::move(req));
      CHAOS_CHECK_EQ(std::any_cast<int>(resp.body), tag);
      CHAOS_CHECK_EQ(resp.type, static_cast<uint32_t>(tag) + 1000);
      ++*completed;
    }(&bus, dst, i, &completed));
  }
  sim.Run();
  EXPECT_EQ(completed, 150);
  EXPECT_EQ(sim.live_tasks(), 0u);
}

TEST(MessageBusTest, UplinkSerializesConcurrentSends) {
  Simulator sim;
  Network net(&sim, 3, TestConfig());
  MessageBus bus(&sim, &net);
  std::vector<TimeNs> deliveries;
  for (MachineId dst = 1; dst <= 2; ++dst) {
    sim.Spawn([](MessageBus* bus, Simulator* s, MachineId me, std::vector<TimeNs>* out)
                  -> Task<> {
      (void)co_await bus->Inbox(me, kComputeService).Pop();
      out->push_back(s->now());
    }(&bus, &sim, dst, &deliveries));
  }
  // Two 1000-byte messages from machine 0 to different destinations share
  // the single uplink: second delivery is pushed out by 1000ns.
  for (MachineId dst = 1; dst <= 2; ++dst) {
    Message m;
    m.src = 0;
    m.dst = dst;
    m.service = kComputeService;
    m.wire_bytes = 1000;
    bus.PostSend(std::move(m));
  }
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  std::sort(deliveries.begin(), deliveries.end());
  EXPECT_EQ(deliveries[0], 1000 + 1000 + 1000);  // up + latency + down
  EXPECT_EQ(deliveries[1], 2000 + 1000 + 1000);  // queued behind first on uplink
}

TEST(MessageBusTest, IncastPenaltyTriggersOnBacklog) {
  NetworkConfig cfg = TestConfig();
  cfg.model_incast = true;
  cfg.incast_backlog_threshold = 1500;
  cfg.incast_penalty = 100000;
  Simulator sim;
  Network net(&sim, 9, cfg);
  MessageBus bus(&sim, &net);
  int received = 0;
  sim.Spawn([](MessageBus* bus, int* received) -> Task<> {
    for (int i = 0; i < 8; ++i) {
      (void)co_await bus->Inbox(0, kComputeService).Pop();
      ++*received;
    }
  }(&bus, &received));
  // 8 senders each push 1000B to machine 0 simultaneously -> downlink backlog
  // exceeds 1500ns after the first two arrive.
  for (MachineId src = 1; src <= 8; ++src) {
    Message m;
    m.src = src;
    m.dst = 0;
    m.service = kComputeService;
    m.wire_bytes = 1000;
    bus.PostSend(std::move(m));
  }
  sim.Run();
  EXPECT_EQ(received, 8);
  EXPECT_GT(net.incast_events(), 0u);
}

TEST(MessageBusTest, NoIncastWhenDisabled) {
  Simulator sim;
  Network net(&sim, 9, TestConfig());
  MessageBus bus(&sim, &net);
  sim.Spawn([](MessageBus* bus) -> Task<> {
    for (int i = 0; i < 8; ++i) {
      (void)co_await bus->Inbox(0, kComputeService).Pop();
    }
  }(&bus));
  for (MachineId src = 1; src <= 8; ++src) {
    Message m;
    m.src = src;
    m.dst = 0;
    m.service = kComputeService;
    m.wire_bytes = 1000;
    bus.PostSend(std::move(m));
  }
  sim.Run();
  EXPECT_EQ(net.incast_events(), 0u);
}

TEST(MessageBusTest, DeliveredCountTracksMessages) {
  Simulator sim;
  Network net(&sim, 2, TestConfig());
  MessageBus bus(&sim, &net);
  sim.Spawn([](MessageBus* bus) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      (void)co_await bus->Inbox(1, kControlService).Pop();
    }
  }(&bus));
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.service = kControlService;
    m.wire_bytes = 10;
    bus.PostSend(std::move(m));
  }
  sim.Run();
  EXPECT_EQ(bus.messages_delivered(), 5u);
}

// ---- Columnar update wire codec (config wire_combine).

// Encode -> Decode must restore the exact record sequence — ids in arrival
// order (including non-monotonic ones: binned batches are clustered but not
// sorted) and the value column byte for byte.
TEST(UpdateWireCodecTest, RoundTripIsByteExact) {
  Rng rng(7);
  const uint64_t value_bytes = 4;
  std::vector<uint64_t> dst;
  std::vector<uint8_t> values;
  const uint64_t base = 123456789;
  for (int i = 0; i < 1000; ++i) {
    dst.push_back(base + rng.Below(1 << 16));  // clustered, NOT sorted
    for (uint64_t b = 0; b < value_bytes; ++b) {
      values.push_back(static_cast<uint8_t>(rng.Below(256)));
    }
  }
  std::vector<uint8_t> frame;
  UpdateWireCodec::Encode(dst.data(), values.data(),
                          static_cast<uint32_t>(dst.size()), value_bytes, &frame);
  EXPECT_EQ(frame.size(), UpdateWireCodec::PackedFrameBytes(
                              dst.data(), static_cast<uint32_t>(dst.size()),
                              value_bytes));
  std::vector<uint64_t> dst2;
  std::vector<uint8_t> values2;
  const uint32_t n =
      UpdateWireCodec::Decode(frame.data(), frame.size(), value_bytes, &dst2, &values2);
  ASSERT_EQ(n, dst.size());
  EXPECT_EQ(dst2, dst);
  EXPECT_EQ(values2, values);
}

TEST(UpdateWireCodecTest, RoundTripEmptyAndSingle) {
  for (const uint32_t n : {0u, 1u}) {
    std::vector<uint64_t> dst(n, 42);
    std::vector<uint8_t> values(n * 8, 0xab);
    std::vector<uint8_t> frame;
    UpdateWireCodec::Encode(dst.data(), values.data(), n, 8, &frame);
    std::vector<uint64_t> dst2;
    std::vector<uint8_t> values2;
    EXPECT_EQ(UpdateWireCodec::Decode(frame.data(), frame.size(), 8, &dst2, &values2), n);
    EXPECT_EQ(dst2, dst);
    EXPECT_EQ(values2, values);
  }
}

// The min rule: clustered ids pack below the verbatim frame; adversarial
// (maximally spread) ids fall back to the verbatim size, never above it.
TEST(UpdateWireCodecTest, PackedWireBytesNeverExceedsVerbatim) {
  const uint64_t record_wire = 12;  // 8-byte id + 4-byte value
  const uint64_t value_bytes = 4;
  std::vector<uint64_t> clustered;
  std::vector<uint64_t> spread;
  Rng rng(3);
  for (int i = 0; i < 4096; ++i) {
    clustered.push_back((5ull << 20) + rng.Below(1 << 14));
    spread.push_back(rng.Next());  // alternating huge deltas: 10-byte varints
  }
  const uint64_t n = clustered.size();
  const uint64_t packed_clustered = UpdateWireCodec::PackedWireBytes(
      clustered.data(), static_cast<uint32_t>(n), record_wire, value_bytes);
  const uint64_t packed_spread = UpdateWireCodec::PackedWireBytes(
      spread.data(), static_cast<uint32_t>(n), record_wire, value_bytes);
  EXPECT_LT(packed_clustered, n * record_wire);
  EXPECT_EQ(packed_spread, n * record_wire);  // verbatim fallback
}

// The sizer is the hot-path twin of PackedFrameBytes: identical sizes,
// incrementally and allocation-free.
TEST(UpdateWireCodecTest, SizerMatchesFrameBytes) {
  Rng rng(11);
  std::vector<uint64_t> dst;
  UpdateWireSizer sizer;
  for (int i = 0; i < 500; ++i) {
    dst.push_back(rng.Below(1ull << 40));
    sizer.Add(dst.back());
  }
  EXPECT_EQ(sizer.count(), dst.size());
  for (const uint64_t vb : {1ull, 4ull, 8ull, 16ull}) {
    EXPECT_EQ(sizer.PackedFrameBytes(vb),
              UpdateWireCodec::PackedFrameBytes(dst.data(),
                                                static_cast<uint32_t>(dst.size()), vb));
    EXPECT_EQ(sizer.PackedWireBytes(8 + vb, vb),
              UpdateWireCodec::PackedWireBytes(
                  dst.data(), static_cast<uint32_t>(dst.size()), 8 + vb, vb));
  }
}

TEST(UpdateWireCodecTest, ZigZagVarintPrimitives) {
  for (const int64_t v : {0ll, 1ll, -1ll, 63ll, -64ll, 1ll << 40, -(1ll << 40)}) {
    EXPECT_EQ(UpdateWireCodec::UnZigZag(UpdateWireCodec::ZigZag(v)), v);
  }
  EXPECT_EQ(UpdateWireCodec::VarintLen(0), 1u);
  EXPECT_EQ(UpdateWireCodec::VarintLen(127), 1u);
  EXPECT_EQ(UpdateWireCodec::VarintLen(128), 2u);
  EXPECT_EQ(UpdateWireCodec::VarintLen(~0ull), 10u);
}

// Regression for the 1B-edge regime: the per-link byte accumulators must be
// 64-bit. Fast-forward a link past 2^32 and check nothing wraps.
TEST(NetworkTest, ByteCountersSurvivePast32Bits) {
  Simulator sim;
  Network net(&sim, 2, TestConfig());
  const uint64_t step = 3ull << 30;  // 3 GiB per note
  for (int i = 0; i < 3; ++i) {
    net.NoteSent(0, step);
    net.NoteReceived(1, step);
  }
  EXPECT_EQ(net.bytes_sent(0), 9ull << 30);  // 9 GiB > 2^32
  EXPECT_EQ(net.bytes_received(1), 9ull << 30);
  EXPECT_EQ(net.total_bytes(), 9ull << 30);
  EXPECT_GT(net.total_bytes(), uint64_t{1} << 32);
}

}  // namespace
}  // namespace chaos
