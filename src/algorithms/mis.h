// Maximal Independent Set via Luby's algorithm (synchronous rounds).
//
// Each round every undecided vertex draws a deterministic pseudo-random
// priority; a vertex joins the set iff its (priority, id) is strictly
// smaller than that of every undecided neighbor. Vertices adjacent to a
// member drop out. Expects an undirected edge list (both directions).
#ifndef CHAOS_ALGORITHMS_MIS_H_
#define CHAOS_ALGORITHMS_MIS_H_

#include <cstdint>

#include "core/gas.h"
#include "graph/types.h"
#include "util/rng.h"

namespace chaos {

class MisProgram {
 public:
  static constexpr const char* kName = "mis";
  static constexpr bool kNeedsOutDegrees = false;

  enum Status : uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

  struct VertexState {
    uint8_t status;
  };
  struct UpdateValue {
    uint64_t priority;
    VertexId id;
    uint8_t src_in;  // sender already joined the set
  };
  struct Accumulator {
    uint64_t min_priority;
    VertexId min_id;
    uint8_t has_undecided;
    uint8_t any_in;
  };
  struct GlobalState {
    uint32_t round;
    uint64_t undecided;
  };
  using OutputRecord = NoOutput;

  static uint64_t Priority(VertexId v, uint32_t round) {
    return Mix64(HashCombine(v, static_cast<uint64_t>(round) + 0x51ab));
  }

  GlobalState InitGlobal(uint64_t) const { return GlobalState{0, 0}; }
  GlobalState InitLocal() const { return GlobalState{0, 0}; }
  Accumulator InitAccum() const { return Accumulator{0, 0, 0, 0}; }
  VertexState InitVertex(const GlobalState&, VertexId, uint32_t) const {
    return VertexState{kUndecided};
  }
  bool WantScatter(const GlobalState&) const { return true; }

  template <typename Emit>
  void Scatter(const GlobalState& g, VertexId src, const VertexState& s, const Edge& e,
               Emit&& emit) const {
    if (src == e.dst) {
      return;  // self-loops do not constrain independence
    }
    if (s.status == kUndecided) {
      emit(e.dst, UpdateValue{Priority(src, g.round), src, 0});
    } else if (s.status == kIn) {
      emit(e.dst, UpdateValue{0, src, 1});
    }
  }

  template <typename Emit>
  void Gather(const GlobalState&, VertexId, const VertexState&, Accumulator& a,
              const UpdateValue& u, Emit&&) const {
    if (u.src_in) {
      a.any_in = 1;
      return;
    }
    if (!a.has_undecided || u.priority < a.min_priority ||
        (u.priority == a.min_priority && u.id < a.min_id)) {
      a.min_priority = u.priority;
      a.min_id = u.id;
      a.has_undecided = 1;
    }
  }

  void MergeAccum(Accumulator& a, const Accumulator& b) const {
    a.any_in |= b.any_in;
    if (b.has_undecided && (!a.has_undecided || b.min_priority < a.min_priority ||
                            (b.min_priority == a.min_priority && b.min_id < a.min_id))) {
      a.min_priority = b.min_priority;
      a.min_id = b.min_id;
      a.has_undecided = 1;
    }
  }

  template <typename Emit, typename Sink>
  bool Apply(const GlobalState& g, VertexId v, VertexState& s, const Accumulator& a,
             GlobalState& local, Emit&&, Sink&&) const {
    bool changed = false;
    if (s.status == kUndecided) {
      if (a.any_in) {
        s.status = kOut;
        changed = true;
      } else {
        const uint64_t mine = Priority(v, g.round);
        const bool wins = !a.has_undecided || mine < a.min_priority ||
                          (mine == a.min_priority && v < a.min_id);
        if (wins) {
          s.status = kIn;
          changed = true;
        }
      }
    }
    if (s.status == kUndecided) {
      ++local.undecided;
    }
    return changed;
  }

  void ReduceGlobal(GlobalState& g, const GlobalState& other) const {
    g.undecided += other.undecided;
  }

  bool Advance(GlobalState& g, uint64_t, uint64_t) const {
    const bool done = g.undecided == 0;
    g.undecided = 0;  // fresh count next round
    ++g.round;
    return done;
  }

  double Extract(const VertexState& s) const { return s.status == kIn ? 1.0 : 0.0; }
};

}  // namespace chaos

#endif  // CHAOS_ALGORITHMS_MIS_H_
