// Streaming partitions (paper §3).
//
// The number of partitions is the smallest multiple of the number of
// machines such that each partition's vertex state (plus accumulators) fits
// in the per-machine memory budget. Vertices are partitioned into ranges of
// consecutive ids; an edge belongs to the partition of its source vertex.
// This is the only pre-processing Chaos does.
#ifndef CHAOS_CORE_PARTITION_H_
#define CHAOS_CORE_PARTITION_H_

#include <cstdint>

#include "graph/types.h"
#include "util/common.h"

namespace chaos {

class Partitioning {
 public:
  // `bytes_per_vertex` covers the in-memory footprint per vertex while a
  // partition is loaded (vertex state + accumulator).
  static Partitioning Compute(uint64_t num_vertices, int machines, uint64_t bytes_per_vertex,
                              uint64_t memory_budget_bytes);

  // A fixed partition count (tests and baselines).
  static Partitioning WithPartitions(uint64_t num_vertices, int machines,
                                     uint32_t num_partitions);

  PartitionId PartitionOf(VertexId v) const {
    CHAOS_CHECK_LT(v, num_vertices_);
    return static_cast<PartitionId>(v / verts_per_partition_);
  }

  VertexId Base(PartitionId p) const {
    CHAOS_CHECK_LT(p, num_partitions_);
    return static_cast<VertexId>(p) * verts_per_partition_;
  }

  uint64_t Count(PartitionId p) const {
    CHAOS_CHECK_LT(p, num_partitions_);
    const VertexId base = Base(p);
    // Ceil-rounded verts_per_partition can push trailing partitions past the
    // vertex range entirely; they are empty (guards the unsigned underflow
    // of num_vertices - base, which made phantom vertices appear past the
    // end of the graph).
    if (base >= num_vertices_) {
      return 0;
    }
    const uint64_t remaining = num_vertices_ - base;
    return remaining < verts_per_partition_ ? remaining : verts_per_partition_;
  }

  // Initial assignment: engine i is the master of partitions i, i+m, i+2m...
  MachineId Master(PartitionId p) const {
    CHAOS_CHECK_LT(p, num_partitions_);
    return static_cast<MachineId>(p % static_cast<uint32_t>(machines_));
  }

  uint32_t num_partitions() const { return num_partitions_; }
  uint64_t num_vertices() const { return num_vertices_; }
  int machines() const { return machines_; }
  uint64_t verts_per_partition() const { return verts_per_partition_; }
  // k in §5: partitions initially assigned to each computation engine.
  uint32_t partitions_per_machine() const {
    return num_partitions_ / static_cast<uint32_t>(machines_);
  }

 private:
  Partitioning(uint64_t num_vertices, int machines, uint32_t num_partitions);

  uint64_t num_vertices_;
  int machines_;
  uint32_t num_partitions_;
  uint64_t verts_per_partition_;
};

}  // namespace chaos

#endif  // CHAOS_CORE_PARTITION_H_
